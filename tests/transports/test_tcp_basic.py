"""TCP transport: connection setup, reliable delivery, backpressure."""

import pytest

from repro.transports.base import Message, SendStatus


def run(pair, dt=1.0):
    pair.engine.run(until=pair.engine.now + dt)


def test_connect_establishes_both_endpoints(tcp_pair):
    ch = tcp_pair.connect()
    assert ch.established
    other = tcp_pair.transports["b"].channel("a")
    assert other is not None and other.established


def test_connect_to_dead_process_fails(tcp_pair):
    tcp_pair.nodes["b"].process.exit("dead")
    results = []
    tcp_pair.transports["a"].connect("b", results.append)
    run(tcp_pair, 2.0)
    assert results == [False]


def test_connect_to_down_node_times_out(tcp_pair):
    tcp_pair.nodes["b"].crash(transient=False)
    results = []
    tcp_pair.transports["a"].connect("b", results.append)
    run(tcp_pair, 30.0)
    assert results == [False]


def test_reconnect_returns_existing_channel(tcp_pair):
    ch = tcp_pair.connect()
    results = []
    again = tcp_pair.transports["a"].connect("b", results.append)
    run(tcp_pair, 0.5)
    assert again is ch
    assert results == [True]


def test_message_delivery_preserves_payload(tcp_pair):
    ch = tcp_pair.connect()
    ch.send(Message("fwd-req", 256, payload={"id": 7}))
    run(tcp_pair)
    [(peer, msg)] = tcp_pair.messages["b"]
    assert peer == "a"
    assert msg.payload == {"id": 7}


def test_messages_delivered_in_order(tcp_pair):
    ch = tcp_pair.connect()
    for i in range(20):
        ch.send(Message("m", 64, payload=i))
    run(tcp_pair, 5.0)
    got = [msg.payload for _p, msg in tcp_pair.messages["b"]]
    assert got == list(range(20))


def test_large_message_segmented_and_reassembled(tcp_pair):
    ch = tcp_pair.connect()
    ch.send(Message("file-data", 3000, payload="big"))  # > segment 1024
    run(tcp_pair, 5.0)
    assert [m.payload for _p, m in tcp_pair.messages["b"]] == ["big"]


def test_oversized_message_rejected(tcp_pair):
    ch = tcp_pair.connect()
    with pytest.raises(ValueError):
        ch.send(Message("huge", 100_000))


def test_bidirectional_traffic(tcp_pair):
    tcp_pair.connect()
    cha = tcp_pair.transports["a"].channel("b")
    chb = tcp_pair.transports["b"].channel("a")
    cha.send(Message("x", 64, payload="from-a"))
    chb.send(Message("x", 64, payload="from-b"))
    run(tcp_pair)
    assert [m.payload for _p, m in tcp_pair.messages["b"]] == ["from-a"]
    assert [m.payload for _p, m in tcp_pair.messages["a"]] == ["from-b"]


def test_backpressure_blocks_beyond_sndbuf(tcp_pair):
    """A peer that stops consuming fills sndbuf; senders get BLOCKED."""
    tcp_pair.nodes["b"].process.sigstop()  # no recv thread
    # SYN handshake still completes (kernel-level) even while stopped.
    ch = tcp_pair.connect()
    statuses = []
    for _ in range(12):  # 12 * 1000B >> 4096 sndbuf
        statuses.append(ch.send(Message("m", 1000)).status)
        run(tcp_pair, 0.05)
    assert SendStatus.BLOCKED in statuses


def test_unblock_event_fires_when_peer_drains(tcp_pair):
    tcp_pair.nodes["b"].process.sigstop()
    ch = tcp_pair.connect()
    blocked = None
    for _ in range(12):
        result = ch.send(Message("m", 1000))
        run(tcp_pair, 0.05)
        if result.status is SendStatus.BLOCKED:
            blocked = result
            break
    assert blocked is not None
    tcp_pair.nodes["b"].process.sigcont()
    run(tcp_pair, 30.0)
    assert blocked.unblock_event.triggered


def test_close_notifies_peer(tcp_pair):
    tcp_pair.connect()
    tcp_pair.transports["a"].close_channel("b")
    run(tcp_pair)
    assert tcp_pair.breaks["b"] == [("a", "peer-closed")]
    assert tcp_pair.breaks["a"] == []  # local close is silent locally


def test_datagram_delivery(tcp_pair):
    tcp_pair.transports["a"].send_datagram("b", Message("heartbeat", 32, payload="hb"))
    run(tcp_pair)
    [(peer, msg)] = tcp_pair.datagrams["b"]
    assert peer == "a" and msg.payload == "hb"


def test_datagram_to_stopped_process_dropped(tcp_pair):
    tcp_pair.nodes["b"].process.sigstop()
    tcp_pair.transports["a"].send_datagram("b", Message("heartbeat", 32))
    run(tcp_pair)
    assert tcp_pair.datagrams["b"] == []


def test_send_on_broken_channel_returns_broken(tcp_pair):
    ch = tcp_pair.connect()
    tcp_pair.nodes["b"].process.exit("crash")
    run(tcp_pair)
    assert ch.broken
    assert ch.send(Message("m", 64)).status is SendStatus.BROKEN


def test_send_costs_charged_to_cpu(tcp_pair):
    ch = tcp_pair.connect()
    busy_before = tcp_pair.nodes["a"].cpu.busy_time
    ch.send(Message("m", 1000))
    run(tcp_pair)
    assert tcp_pair.nodes["a"].cpu.busy_time > busy_before
