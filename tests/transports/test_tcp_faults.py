"""TCP under faults: the detection/stall behaviours the paper measures."""

import pytest

from repro.net.link import intra_cluster_kind
from repro.transports.base import CorruptionKind, Message, SendStatus


def run(pair, dt=1.0):
    pair.engine.run(until=pair.engine.now + dt)


class TestLinkFaults:
    def test_no_break_during_transient_link_fault(self, tcp_pair):
        """TCP keeps retrying; a short outage never breaks the connection."""
        ch = tcp_pair.connect()
        tcp_pair.fabric.link("b").fail_for(intra_cluster_kind)
        ch.send(Message("m", 64, payload="x"))
        run(tcp_pair, 30.0)
        assert tcp_pair.breaks["a"] == []
        assert tcp_pair.messages["b"] == []

    def test_retransmission_delivers_after_repair(self, tcp_pair):
        ch = tcp_pair.connect()
        link = tcp_pair.fabric.link("b")
        link.fail_for(intra_cluster_kind)
        ch.send(Message("m", 64, payload="x"))
        run(tcp_pair, 10.0)
        link.repair()
        run(tcp_pair, 30.0)
        assert [m.payload for _p, m in tcp_pair.messages["b"]] == ["x"]
        assert ch.retransmissions > 0

    def test_rto_backs_off_exponentially(self, tcp_pair):
        ch = tcp_pair.connect()
        tcp_pair.fabric.link("b").fail_for(intra_cluster_kind)
        ch.send(Message("m", 64))
        run(tcp_pair, 10.0)
        assert ch._rto > 0.2  # doubled at least once

    def test_connection_timeout_eventually_breaks(self, tcp_pair):
        """After ~minutes of failed retries, the kernel gives up."""
        ch = tcp_pair.connect()
        tcp_pair.fabric.link("b").fail()
        ch.send(Message("m", 64))
        run(tcp_pair, ch.params.connection_timeout + 30.0)
        assert ch.broken
        assert ("b", "etimedout") in tcp_pair.breaks["a"]

    def test_backoff_reset_wins_over_stale_armed_timer(self, tcp_pair):
        """The lazily re-armed RTO must honour a backoff reset.

        After an outage the channel's physical timer may still be armed
        at a doubled timeout.  Once an ACK resets the backoff, the next
        loss has to be detected after ``rto_initial`` again — not after
        whatever stale deadline happens to be in the heap."""
        ch = tcp_pair.connect()
        link = tcp_pair.fabric.link("b")
        link.fail_for(intra_cluster_kind)
        ch.send(Message("m", 64))
        run(tcp_pair, 3.0)
        assert ch._rto > ch.params.rto_initial  # backed off during outage
        link.repair()
        run(tcp_pair, 5.0)  # retransmit lands; the ACK resets the backoff
        assert ch._rto == ch.params.rto_initial
        link.fail_for(intra_cluster_kind)
        ch.send(Message("m", 64, payload="second-outage"))
        before = ch.retransmissions
        run(tcp_pair, ch.params.rto_initial + 0.1)
        assert ch.retransmissions > before


class TestProcessAndNodeDeath:
    def test_process_crash_breaks_peers_fast(self, tcp_pair):
        """Kernel survives the process: peers get FIN/RST immediately."""
        tcp_pair.connect()
        tcp_pair.nodes["b"].process.exit("bug")
        run(tcp_pair, 1.0)
        assert tcp_pair.breaks["a"] == [("b", "peer-closed")]

    def test_node_crash_is_silent_until_reboot_rst(self, tcp_pair):
        """A machine crash sends nothing; peers learn via RST after the
        rebooted kernel answers a retransmitted segment."""
        ch = tcp_pair.connect()
        tcp_pair.nodes["b"].reboot_time = 10.0
        tcp_pair.nodes["b"].crash()
        ch.send(Message("m", 64))
        run(tcp_pair, 5.0)
        assert tcp_pair.breaks["a"] == []  # still in the dark
        run(tcp_pair, 30.0)  # reboot at 10s; next retransmit draws an RST
        assert ("b", "connection-reset") in tcp_pair.breaks["a"]

    def test_hang_never_breaks_connection(self, tcp_pair):
        """Kernel-level ACKs continue during a process hang: no break."""
        ch = tcp_pair.connect()
        tcp_pair.nodes["b"].process.sigstop()
        for _ in range(8):
            ch.send(Message("m", 900))
            run(tcp_pair, 0.1)
        run(tcp_pair, 20.0)
        assert tcp_pair.breaks["a"] == []

    def test_hang_resume_delivers_buffered(self, tcp_pair):
        ch = tcp_pair.connect()
        tcp_pair.nodes["b"].process.sigstop()
        ch.send(Message("m", 64, payload="held"))
        run(tcp_pair, 2.0)
        assert tcp_pair.messages["b"] == []
        tcp_pair.nodes["b"].process.sigcont()
        run(tcp_pair, 5.0)
        assert [m.payload for _p, m in tcp_pair.messages["b"]] == ["held"]


class TestKernelMemoryFault:
    def test_outbound_queues_until_memory_returns(self, tcp_pair):
        ch = tcp_pair.connect()
        kernel = tcp_pair.nodes["a"].kernel_memory
        kernel.inject_allocation_fault()
        ch.send(Message("m", 64, payload="waiting"))
        run(tcp_pair, 5.0)
        assert tcp_pair.messages["b"] == []
        kernel.clear_fault()
        run(tcp_pair, 5.0)
        assert [m.payload for _p, m in tcp_pair.messages["b"]] == ["waiting"]

    def test_inbound_dropped_at_faulty_node(self, tcp_pair):
        ch = tcp_pair.connect()
        tcp_pair.nodes["b"].kernel_memory.inject_allocation_fault()
        ch.send(Message("m", 64))
        run(tcp_pair, 3.0)
        assert tcp_pair.messages["b"] == []

    def test_datagrams_need_skbufs_too(self, tcp_pair):
        tcp_pair.nodes["a"].kernel_memory.inject_allocation_fault()
        tcp_pair.transports["a"].send_datagram("b", Message("heartbeat", 32))
        run(tcp_pair)
        assert tcp_pair.datagrams["b"] == []


class TestBadParameters:
    def test_null_pointer_detected_synchronously(self, tcp_pair):
        """send(NULL) returns EFAULT; nothing enters the stream."""
        ch = tcp_pair.connect()
        result = ch.send(
            Message("m", 64, corruption=CorruptionKind.NULL_POINTER)
        )
        assert result.status is SendStatus.SYNC_ERROR
        assert result.error.errno_name == "EFAULT"
        run(tcp_pair, 2.0)
        assert tcp_pair.messages["b"] == []
        assert tcp_pair.fatals["a"] == []
        # The stream is NOT poisoned: later messages flow normally.
        ch.send(Message("m", 64, payload="after"))
        run(tcp_pair, 2.0)
        assert [m.payload for _p, m in tcp_pair.messages["b"]] == ["after"]

    def test_off_by_n_pointer_garbles_this_message(self, tcp_pair):
        ch = tcp_pair.connect()
        ch.send(Message("m", 64, corruption=CorruptionKind.OFF_BY_N_POINTER))
        run(tcp_pair, 2.0)
        assert tcp_pair.messages["b"] == []
        assert any("framing" in f for f in tcp_pair.fatals["b"])

    def test_off_by_n_size_poisons_the_stream(self, tcp_pair):
        """The corrupted message passes; every following one is garbage —
        the byte-stream vulnerability the paper calls out."""
        ch = tcp_pair.connect()
        ch.send(
            Message(
                "m", 64, payload="silent",
                corruption=CorruptionKind.OFF_BY_N_SIZE, skew=13,
            )
        )
        run(tcp_pair, 2.0)
        # The corrupted message itself is delivered (wrong bytes, but the
        # framing still parses).
        assert [m.payload for _p, m in tcp_pair.messages["b"]] == ["silent"]
        ch.send(Message("m", 64, payload="doomed"))
        run(tcp_pair, 2.0)
        assert [m.payload for _p, m in tcp_pair.messages["b"]] == ["silent"]
        assert any("framing" in f for f in tcp_pair.fatals["b"])

    def test_error_confined_to_one_end(self, tcp_pair):
        """TCP bad parameters hurt sender OR receiver, never both."""
        ch = tcp_pair.connect()
        ch.send(Message("m", 64, corruption=CorruptionKind.OFF_BY_N_POINTER))
        run(tcp_pair, 2.0)
        assert tcp_pair.fatals["a"] == []
        assert len(tcp_pair.fatals["b"]) == 1
