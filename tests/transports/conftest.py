"""Fixtures for transport tests: wired node pairs."""

from __future__ import annotations

import pytest

from repro.net.fabric import Fabric
from repro.osim.node import Node
from repro.sim.engine import Engine
from repro.transports.tcp import TcpParams, TcpTransport
from repro.transports.via import ViaParams, ViaTransport

#: Small buffers so backpressure tests stall quickly.
SMALL_TCP = TcpParams(
    segment_size=1024,
    sndbuf_bytes=4096,
    rcvbuf_bytes=4096,
    window_bytes=4096,
    rto_initial=0.2,
    rto_max=5.0,
)

SMALL_VIA = ViaParams(credits=4, buffer_bytes=4096, app_queue_limit=16)


class Pair:
    """Two nodes with transports and capture hooks."""

    def __init__(self, engine, transport_cls, **kw):
        self.engine = engine
        self.fabric = Fabric(engine)
        self.nodes = {}
        self.transports = {}
        self.messages = {"a": [], "b": []}
        self.breaks = {"a": [], "b": []}
        self.fatals = {"a": [], "b": []}
        self.datagrams = {"a": [], "b": []}
        for name in ("a", "b"):
            node = Node(engine, name, self.fabric.attach(name))
            node.process.start()
            self.nodes[name] = node
            t = transport_cls(engine, node, **kw)
            t.on_message = lambda peer, msg, n=name: self.messages[n].append(
                (peer, msg)
            )
            t.on_break = lambda peer, why, n=name: self.breaks[n].append(
                (peer, why)
            )
            t.on_fatal = lambda why, n=name: self.fatals[n].append(why)
            t.on_datagram = lambda peer, msg, n=name: self.datagrams[n].append(
                (peer, msg)
            )
            self.transports[name] = t

    def connect(self, run_for: float = 1.0):
        results = []
        ch = self.transports["a"].connect("b", results.append)
        self.engine.run(until=self.engine.now + run_for)
        assert results == [True], f"connect failed: {results}"
        return ch


@pytest.fixture
def tcp_pair(engine):
    return Pair(engine, TcpTransport, params=SMALL_TCP)


@pytest.fixture
def via_pair(engine):
    return Pair(engine, ViaTransport, params=SMALL_VIA)


@pytest.fixture
def rdma_pair(engine):
    return Pair(engine, ViaTransport, params=SMALL_VIA, remote_writes=True)
