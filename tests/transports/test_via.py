"""VIA transport: message boundaries, credits, fail-stop, pre-allocation."""

import pytest

from repro.net.link import intra_cluster_kind
from repro.transports.base import CorruptionKind, Message, SendStatus
from repro.transports.via import ViaRegistrationError


def run(pair, dt=1.0):
    pair.engine.run(until=pair.engine.now + dt)


class TestBasics:
    def test_connect_and_deliver(self, via_pair):
        ch = via_pair.connect()
        ch.send(Message("fwd-req", 256, payload=1))
        run(via_pair)
        assert [m.payload for _p, m in via_pair.messages["b"]] == [1]

    def test_message_boundaries_preserved(self, via_pair):
        ch = via_pair.connect()
        for i in range(10):
            ch.send(Message("m", 100 + i, payload=i))
        run(via_pair, 3.0)
        got = [(m.payload, m.size) for _p, m in via_pair.messages["b"]]
        assert got == [(i, 100 + i) for i in range(10)]

    def test_connect_to_dead_process_rejected(self, via_pair):
        via_pair.nodes["b"].process.exit("dead")
        results = []
        via_pair.transports["a"].connect("b", results.append)
        run(via_pair, 2.0)
        assert results == [False]

    def test_channel_setup_pins_memory(self, via_pair):
        pinned_before = via_pair.nodes["a"].pinnable.pinned
        via_pair.connect()
        assert via_pair.nodes["a"].pinnable.pinned > pinned_before
        assert via_pair.nodes["b"].pinnable.pinned > 0

    def test_close_unpins_and_notifies_peer(self, via_pair):
        via_pair.connect()
        pinned = via_pair.nodes["a"].pinnable.pinned
        via_pair.transports["a"].close_channel("b")
        run(via_pair)
        assert via_pair.nodes["a"].pinnable.pinned < pinned
        assert via_pair.breaks["b"] == [("a", "peer-closed")]

    def test_registration_failure_fails_connect(self, via_pair):
        """No pinnable memory: VipCreateVi fails and the connect attempt
        is reported unsuccessful (without tearing anything down)."""
        via_pair.nodes["a"].pinnable.inject_pin_fault(0)
        results = []
        ch = via_pair.transports["a"].connect("b", results.append)
        run(via_pair)
        assert results == [False]
        assert ch.broken
        assert via_pair.transports["a"].channel("b") is None

    def test_peer_registration_failure_rejects_connect(self, via_pair):
        via_pair.nodes["b"].pinnable.inject_pin_fault(0)
        results = []
        via_pair.transports["a"].connect("b", results.append)
        run(via_pair, 5.0)
        assert results == [False]


class TestFlowControl:
    def test_credits_consumed_and_returned(self, via_pair):
        ch = via_pair.connect()
        assert ch.credits == 4
        for i in range(4):
            ch.send(Message("m", 64, payload=i))
        assert ch.credits == 0
        run(via_pair, 1.0)
        assert ch.credits == 4  # receiver reposted and returned them
        assert len(via_pair.messages["b"]) == 4

    def test_hung_peer_withholds_credits(self, via_pair):
        """A stopped process has no receive thread: credits starve."""
        ch = via_pair.connect()
        via_pair.nodes["b"].process.sigstop()
        for i in range(10):
            ch.send(Message("m", 64, payload=i))
            run(via_pair, 0.1)
        assert ch.credits == 0
        assert len(ch.backlog) > 0
        assert via_pair.messages["b"] == []

    def test_main_loop_never_blocks_on_stalled_peer(self, via_pair):
        """PRESS's user-level flow control: sends return SENT even when
        the peer starves credits — the antithesis of TCP's stall."""
        ch = via_pair.connect()
        via_pair.nodes["b"].process.sigstop()
        statuses = {ch.send(Message("m", 64)).status for _ in range(30)}
        assert statuses == {SendStatus.SENT}

    def test_overflowing_app_queue_sheds_oldest(self, via_pair):
        ch = via_pair.connect()
        via_pair.nodes["b"].process.sigstop()
        for i in range(40):  # app_queue_limit=16
            ch.send(Message("m", 64, payload=i))
        assert ch.messages_shed > 0
        assert len(ch.backlog) <= ch.params.app_queue_limit

    def test_resume_drains_frozen_backlog(self, via_pair):
        ch = via_pair.connect()
        via_pair.nodes["b"].process.sigstop()
        for i in range(3):
            ch.send(Message("m", 64, payload=i))
        run(via_pair, 1.0)
        via_pair.nodes["b"].process.sigcont()
        run(via_pair, 2.0)
        assert [m.payload for _p, m in via_pair.messages["b"]] == [0, 1, 2]


class TestFailStop:
    def test_node_crash_breaks_on_next_send(self, via_pair):
        """SAN hardware reports the dead peer; detection is immediate."""
        ch = via_pair.connect()
        via_pair.nodes["b"].crash(transient=False)
        ch.send(Message("m", 64))
        run(via_pair, 0.5)
        assert via_pair.breaks["a"] == [("b", "hw-unreachable")]
        assert ch.broken

    def test_link_fault_breaks_all_channels(self, via_pair):
        ch = via_pair.connect()
        via_pair.fabric.link("b").fail_for(intra_cluster_kind)
        ch.send(Message("m", 64))
        run(via_pair, 0.5)
        assert len(via_pair.breaks["a"]) == 1

    def test_process_death_tears_down_and_notifies(self, via_pair):
        via_pair.connect()
        pinned = via_pair.nodes["b"].pinnable.pinned
        via_pair.nodes["b"].process.exit("bug")
        run(via_pair, 0.5)
        # The dying provider tears down its VIs; the peer sees the
        # hardware disconnect as a closed connection.
        assert via_pair.breaks["a"] == [("b", "peer-closed")]
        assert via_pair.nodes["b"].pinnable.pinned < pinned

    def test_kernel_memory_fault_has_no_effect(self, via_pair):
        """Pre-allocation: the VIA data path never touches the kernel
        allocator — the paper's central resource-exhaustion result."""
        ch = via_pair.connect()
        via_pair.nodes["a"].kernel_memory.inject_allocation_fault()
        via_pair.nodes["b"].kernel_memory.inject_allocation_fault()
        for i in range(5):
            ch.send(Message("m", 64, payload=i))
        run(via_pair, 2.0)
        assert len(via_pair.messages["b"]) == 5

    def test_pin_fault_after_setup_has_no_effect_on_data_path(self, via_pair):
        ch = via_pair.connect()
        via_pair.nodes["a"].pinnable.inject_pin_fault(0)
        ch.send(Message("m", 64, payload="ok"))
        run(via_pair)
        assert [m.payload for _p, m in via_pair.messages["b"]] == ["ok"]


class TestDescriptorErrors:
    def test_null_pointer_fatal_at_sender_only(self, via_pair):
        """VIA-PRESS-0: async completion error, one end, fail-fast."""
        ch = via_pair.connect()
        ch.send(Message("m", 64, corruption=CorruptionKind.NULL_POINTER))
        run(via_pair, 1.0)
        assert len(via_pair.fatals["a"]) == 1
        assert via_pair.fatals["b"] == []

    def test_off_by_size_fatal_at_sender_only(self, via_pair):
        ch = via_pair.connect()
        ch.send(Message("m", 64, corruption=CorruptionKind.OFF_BY_N_SIZE, skew=9))
        run(via_pair, 1.0)
        assert len(via_pair.fatals["a"]) == 1
        assert via_pair.fatals["b"] == []

    def test_off_by_pointer_fatal_at_receiver_only(self, via_pair):
        ch = via_pair.connect()
        ch.send(Message("m", 64, corruption=CorruptionKind.OFF_BY_N_POINTER))
        run(via_pair, 1.0)
        assert via_pair.fatals["a"] == []
        assert len(via_pair.fatals["b"]) == 1

    def test_remote_writes_report_error_at_both_ends(self, rdma_pair):
        """VIA-PRESS-3/5: one bad descriptor takes down two nodes."""
        ch = rdma_pair.connect()
        ch.send(Message("m", 64, corruption=CorruptionKind.NULL_POINTER))
        run(rdma_pair, 1.0)
        assert len(rdma_pair.fatals["a"]) == 1
        assert len(rdma_pair.fatals["b"]) == 1

    def test_subsequent_messages_unaffected(self, via_pair):
        """No byte stream: a bad descriptor never poisons later sends."""
        ch = via_pair.connect()
        ch.send(Message("m", 64, corruption=CorruptionKind.OFF_BY_N_SIZE, skew=5))
        ch.send(Message("m", 64, payload="clean"))
        run(via_pair, 1.0)
        assert [m.payload for _p, m in via_pair.messages["b"]] == ["clean"]


class TestDatagrams:
    def test_datagram_roundtrip(self, via_pair):
        via_pair.transports["a"].send_datagram(
            "b", Message("join-request", 48, payload="a")
        )
        run(via_pair)
        assert [(p, m.payload) for p, m in via_pair.datagrams["b"]] == [("a", "a")]

    def test_datagram_immune_to_kernel_memory_fault(self, via_pair):
        via_pair.nodes["a"].kernel_memory.inject_allocation_fault()
        via_pair.transports["a"].send_datagram("b", Message("x", 48))
        run(via_pair)
        assert len(via_pair.datagrams["b"]) == 1
