"""Tests for the §7 ideal communication layer (extension)."""

import pytest

from repro.transports.base import CorruptionKind, Message, SendStatus
from repro.transports.ideal import IdealTransport

from .conftest import SMALL_VIA, Pair


@pytest.fixture
def ideal_pair(engine):
    return Pair(engine, IdealTransport, params=SMALL_VIA, remote_writes=True)


def run(pair, dt=1.0):
    pair.engine.run(until=pair.engine.now + dt)


def test_normal_delivery_unchanged(ideal_pair):
    ch = ideal_pair.connect()
    for i in range(5):
        ch.send(Message("m", 64, payload=i))
    run(ideal_pair)
    assert [m.payload for _p, m in ideal_pair.messages["b"]] == list(range(5))


def test_bad_parameters_rejected_synchronously(ideal_pair):
    ch = ideal_pair.connect()
    for kind in (
        CorruptionKind.NULL_POINTER,
        CorruptionKind.OFF_BY_N_POINTER,
        CorruptionKind.OFF_BY_N_SIZE,
    ):
        result = ch.send(Message("m", 64, corruption=kind, skew=7))
        assert result.status is SendStatus.SYNC_ERROR, kind
        assert result.error.errno_name == "VIP_INVALID_PARAMETER"
    run(ideal_pair)
    # Nothing fatal anywhere, nothing delivered, channel intact.
    assert ideal_pair.fatals["a"] == []
    assert ideal_pair.fatals["b"] == []
    assert ideal_pair.messages["b"] == []
    assert not ch.broken
    assert ideal_pair.transports["a"].rejected_posts == 3


def test_subsequent_traffic_survives_a_bad_post(ideal_pair):
    ch = ideal_pair.connect()
    ch.send(Message("m", 64, corruption=CorruptionKind.NULL_POINTER))
    ch.send(Message("m", 64, payload="after"))
    run(ideal_pair)
    assert [m.payload for _p, m in ideal_pair.messages["b"]] == ["after"]


def test_keeps_via_failstop_detection(ideal_pair):
    ch = ideal_pair.connect()
    ideal_pair.nodes["b"].crash(transient=False)
    ch.send(Message("m", 64))
    run(ideal_pair)
    assert ideal_pair.breaks["a"] == [("b", "hw-unreachable")]


def test_keeps_preallocation_immunity(ideal_pair):
    ch = ideal_pair.connect()
    ideal_pair.nodes["a"].kernel_memory.inject_allocation_fault()
    ch.send(Message("m", 64, payload="ok"))
    run(ideal_pair)
    assert [m.payload for _p, m in ideal_pair.messages["b"]] == ["ok"]


def test_ideal_press_cluster_survives_null_fault():
    from repro.faults.spec import FaultKind, FaultSpec
    from repro.press.cluster import SMOKE_SCALE, PressCluster
    from repro.press.config import IDEAL_PRESS

    c = PressCluster(IDEAL_PRESS, scale=SMOKE_SCALE, seed=3)
    c.start()
    c.mendosus.schedule(
        FaultSpec(FaultKind.BAD_PARAM_NULL, target="node2", at=30.0)
    )
    c.run_until(90.0)
    assert all(s.fail_fasts == 0 for s in c.servers.values())
    assert c.measured_rate(35.0, 90.0) > c.measured_rate(10.0, 30.0) * 0.9
