"""Edge cases of the transport state machines."""

import pytest

from repro.net.packet import Frame
from repro.transports.base import CorruptionKind, Message, SendStatus
from repro.transports.costs import (
    TCP_COSTS,
    VIA0_COSTS,
    VIA3_COSTS,
    VIA5_COSTS,
    TransportCosts,
)
from repro.transports.tcp.connection import CtrlPayload


def run(pair, dt=1.0):
    pair.engine.run(until=pair.engine.now + dt)


class TestTcpEdges:
    def test_duplicate_syn_is_idempotent(self, tcp_pair):
        ch = tcp_pair.connect()
        # Replay the SYN the peer already accepted.
        tcp_pair.nodes["a"].nic.send(
            Frame(src="a", dst="b", size=64, kind="tcp-syn",
                  payload=CtrlPayload(gen=ch.gen))
        )
        run(tcp_pair)
        assert tcp_pair.transports["b"].channel("a").gen == ch.gen
        ch.send(Message("m", 64, payload="still works"))
        run(tcp_pair)
        assert [m.payload for _p, m in tcp_pair.messages["b"]] == ["still works"]

    def test_stale_generation_segment_draws_rst(self, tcp_pair):
        ch = tcp_pair.connect()
        from repro.transports.tcp.connection import SegPayload

        # A segment from a long-dead connection generation.
        tcp_pair.nodes["a"].nic.send(
            Frame(src="a", dst="b", size=100, kind="tcp-seg",
                  payload=SegPayload(gen=999999, seq=0, length=100))
        )
        run(tcp_pair)
        # The live connection must not be harmed by the stale-gen RST.
        assert not ch.broken

    def test_segment_after_close_draws_rst_not_crash(self, tcp_pair):
        ch = tcp_pair.connect()
        tcp_pair.transports["b"].close_channel("a")
        run(tcp_pair)
        ch2 = tcp_pair.transports["a"].channel("b")
        # a's endpoint broke via the close; further sends report BROKEN.
        assert ch.broken
        assert ch.send(Message("m", 64)).status is SendStatus.BROKEN

    def test_reconnect_after_break_gets_fresh_generation(self, tcp_pair):
        ch = tcp_pair.connect()
        old_gen = ch.gen
        tcp_pair.nodes["b"].process.exit("x")
        run(tcp_pair)
        tcp_pair.nodes["b"].process.start()
        run(tcp_pair)
        results = []
        ch2 = tcp_pair.transports["a"].connect("b", results.append)
        run(tcp_pair, 3.0)
        assert results == [True]
        assert ch2.gen != old_gen

    def test_zero_byte_message(self, tcp_pair):
        ch = tcp_pair.connect()
        ch.send(Message("ping", 0, payload="empty"))
        run(tcp_pair)
        assert [m.payload for _p, m in tcp_pair.messages["b"]] == ["empty"]

    def test_many_interleaved_sizes_keep_order(self, tcp_pair):
        ch = tcp_pair.connect()
        sizes = [0, 1, 700, 13, 1500, 64, 2048, 5]
        for i, size in enumerate(sizes):
            ch.send(Message("m", size, payload=i))
        run(tcp_pair, 5.0)
        assert [m.payload for _p, m in tcp_pair.messages["b"]] == list(
            range(len(sizes))
        )

    def test_negative_skew_poisons_stream_too(self, tcp_pair):
        ch = tcp_pair.connect()
        ch.send(
            Message("m", 64, corruption=CorruptionKind.OFF_BY_N_SIZE, skew=-9)
        )
        ch.send(Message("m", 64, payload="doomed"))
        run(tcp_pair, 2.0)
        assert any("framing" in f for f in tcp_pair.fatals["b"])

    def test_interposer_applies_and_clears(self, tcp_pair):
        ch = tcp_pair.connect()
        transport = tcp_pair.transports["a"]
        calls = []

        def interposer(msg):
            calls.append(msg.msg_type)
            return msg

        transport.interpose_send(interposer)
        ch.send(Message("m", 64))
        transport.clear_interposers()
        ch.send(Message("m", 64))
        assert calls == ["m"]


class TestViaEdges:
    def test_duplicate_connect_request_is_idempotent(self, via_pair):
        ch = via_pair.connect()
        via_pair.nodes["a"].nic.send(
            Frame(src="a", dst="b", size=64, kind="via-connect",
                  payload=(ch.gen, None))
        )
        run(via_pair)
        assert via_pair.transports["b"].channel("a").gen == ch.gen

    def test_credits_never_exceed_pool(self, via_pair):
        ch = via_pair.connect()
        ch.handle_credits(100)  # malicious/buggy credit return
        assert ch.credits == ch.params.credits

    def test_remote_error_on_unknown_gen_ignored(self, rdma_pair):
        rdma_pair.connect()
        rdma_pair.nodes["a"].nic.send(
            Frame(src="a", dst="b", size=64, kind="via-remote-error",
                  payload=(424242, "off-by-n-size"))
        )
        run(rdma_pair)
        assert rdma_pair.fatals["b"] == []

    def test_message_on_broken_channel_dropped(self, via_pair):
        ch = via_pair.connect()
        gen = ch.gen
        via_pair.transports["b"].close_channel("a")
        run(via_pair)
        via_pair.nodes["a"].nic.send(
            Frame(src="a", dst="b", size=64, kind="via-msg",
                  payload=(gen, Message("m", 64, payload="ghost")))
        )
        run(via_pair)
        assert via_pair.messages["b"] == []

    def test_double_crash_only_one_break_notification(self, via_pair):
        ch = via_pair.connect()
        via_pair.nodes["b"].crash(transient=False)
        ch.send(Message("m", 64))
        ch2 = via_pair.transports["a"].channel("b")
        run(via_pair)
        assert len(via_pair.breaks["a"]) == 1

    def test_pinned_bytes_balance_after_churn(self, via_pair):
        base = via_pair.nodes["a"].pinnable.pinned
        for _ in range(3):
            via_pair.connect()
            via_pair.transports["a"].close_channel("b")
            run(via_pair)
            # b's side also cleans up when it learns of the close
        run(via_pair, 2.0)
        assert via_pair.nodes["a"].pinnable.pinned == base


class TestCostModel:
    def test_send_cost_includes_copies(self):
        msg = Message("m", 10_000)
        assert TCP_COSTS.send_cost(msg) > TCP_COSTS.send_overhead
        assert VIA5_COSTS.send_cost(msg) == VIA5_COSTS.send_overhead

    def test_version_ordering_for_file_messages(self):
        """Per-message costs must order the versions as Table 1 does."""
        msg = Message("file-data", 10_240)
        total = lambda c: c.send_cost(msg) + c.recv_cost(msg)
        assert total(TCP_COSTS) > total(VIA0_COSTS) > total(VIA3_COSTS) > total(
            VIA5_COSTS
        )

    def test_scaling_keeps_byte_to_overhead_proportion(self):
        msg_full = Message("m", 10_000)
        msg_scaled = Message("m", 1_000)
        scaled = TCP_COSTS.scaled(10.0)
        ratio_full = (
            TCP_COSTS.send_copy_per_byte * msg_full.size
        ) / TCP_COSTS.send_overhead
        ratio_scaled = (
            scaled.send_copy_per_byte * msg_scaled.size
        ) / scaled.send_overhead
        assert ratio_scaled == pytest.approx(ratio_full)

    def test_scaled_total_cost_scales_linearly(self):
        msg_full = Message("m", 10_000)
        msg_scaled = Message("m", 1_000)
        assert TCP_COSTS.scaled(10.0).send_cost(msg_scaled) == pytest.approx(
            10.0 * TCP_COSTS.send_cost(msg_full)
        )
