"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def run_cli(capsys, *argv):
    main(list(argv))
    return capsys.readouterr().out


FAST = ["--scale", "200", "--seed", "3", "--replications", "1"]


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_accepts_global_flags():
    args = build_parser().parse_args(
        ["--scale", "50", "--seed", "9", "table1"]
    )
    assert args.scale == 50.0
    assert args.seed == 9
    assert args.command == "table1"


def test_table1_command(capsys):
    out = run_cli(capsys, *FAST, "table1")
    assert "VIA-PRESS-5" in out
    assert "paper" in out


def test_timeline_command(capsys):
    out = run_cli(
        capsys, *FAST, "timeline",
        "--version", "VIA-PRESS-0", "--fault", "application-crash",
    )
    assert "VIA-PRESS-0 / application-crash" in out
    assert "availability over the run" in out


def test_timeline_rejects_unknown_fault():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["timeline", "--version", "X", "--fault", "not-a-fault"]
        )


def test_figure_command_rejects_unknown_number():
    with pytest.raises(SystemExit):
        main([*FAST, "figure", "11"])


def test_figure5_command(capsys):
    out = run_cli(capsys, *FAST, "figure", "5")
    assert "bad-param-null-pointer" in out
    assert "TCP-PRESS" in out


def test_parser_accepts_jobs_and_cache_dir(tmp_path):
    args = build_parser().parse_args(
        ["--jobs", "4", "--cache-dir", str(tmp_path), "campaign"]
    )
    assert args.jobs == 4
    assert args.cache_dir == str(tmp_path)


@pytest.fixture
def restore_campaign_defaults():
    """CLI tests mutate the process-wide campaign defaults; undo it."""
    from repro.experiments import campaign as campaign_mod

    store, jobs = campaign_mod._default_store, campaign_mod._default_jobs
    yield
    campaign_mod.configure(store=store, jobs=jobs)


def test_campaign_command_with_cache_dir(
    capsys, tmp_path, restore_campaign_defaults
):
    cache = tmp_path / "cache"
    argv = [
        *FAST, "--cache-dir", str(cache), "campaign",
        "--versions", "TCP-PRESS",
    ]
    out = run_cli(capsys, *argv)
    assert "PHASE 1" in out and "campaign:" in out
    assert "0 from cache" in out
    assert any(cache.rglob("*.json"))
    # Second invocation replays entirely from the store.
    out = run_cli(capsys, *argv)
    assert "0 executed" in out


def test_campaign_clear_cache_flag(
    capsys, tmp_path, restore_campaign_defaults
):
    cache = tmp_path / "cache"
    argv = [*FAST, "--cache-dir", str(cache)]
    run_cli(capsys, *argv, "campaign", "--versions", "TCP-PRESS")
    out = run_cli(
        capsys, *argv, "--clear-cache", "campaign", "--versions", "TCP-PRESS"
    )
    assert "0 from cache" in out


# ----------------------------------------------------------------------
# dashboard / trace-validate subcommands
# ----------------------------------------------------------------------


def _seed_store(cache_dir):
    """A minimal persisted campaign (one version, one fault)."""
    from repro.experiments.runner import run_campaign
    from repro.experiments.settings import Phase1Settings
    from repro.experiments.store import DiskStore
    from repro.faults.spec import FaultKind
    from repro.press.cluster import SMOKE_SCALE

    settings = Phase1Settings(
        scale=SMOKE_SCALE, seed=1234, warm=15.0, fault_at=30.0,
        fault_duration=40.0, post_recovery=60.0, tail=40.0, replications=1,
    )
    run_campaign(
        settings, versions=["TCP-PRESS"], faults=[FaultKind.LINK_DOWN],
        store=DiskStore(cache_dir),
    )


def test_dashboard_command_renders_a_store(capsys, tmp_path):
    store = tmp_path / "cache"
    _seed_store(store)
    out_file = tmp_path / "dash.html"
    out = run_cli(capsys, "dashboard", str(store), "--out", str(out_file))
    assert str(out_file) in out
    html = out_file.read_text(encoding="utf-8")
    assert "<svg" in html and "TCP-PRESS" in html and "link-down" in html


def test_dashboard_command_defaults_into_the_store(capsys, tmp_path):
    store = tmp_path / "cache"
    _seed_store(store)
    out = run_cli(capsys, "dashboard", str(store))
    assert str(store / "dashboard.html") in out
    assert (store / "dashboard.html").exists()


def test_dashboard_command_exits_nonzero_on_empty_store(tmp_path):
    with pytest.raises(SystemExit) as exc:
        main(["dashboard", str(tmp_path)])
    assert exc.value.code != 0


def _write_traces(trace_dir):
    from repro.obs.bus import SimEvent
    from repro.obs.exporters import export_run

    events = [
        SimEvent(time=0.5, seq=1, name="press.cache.hit", node="n0"),
        SimEvent(time=0.7, seq=2, name="press.cache.miss", node="n0"),
    ]
    export_run(events, trace_dir, "run", "both")


def test_trace_validate_command_reports_per_file_counts(capsys, tmp_path):
    _write_traces(tmp_path)
    out = run_cli(capsys, "trace-validate", str(tmp_path))
    assert "run.jsonl: 2 events ok" in out
    assert "trace-validate: 2 file(s) ok" in out


def test_trace_validate_exits_nonzero_on_malformed_trace(tmp_path):
    _write_traces(tmp_path)
    (tmp_path / "run.jsonl").write_text("this is not json\n")
    with pytest.raises(SystemExit) as exc:
        main(["trace-validate", str(tmp_path)])
    assert exc.value.code != 0
    assert "not JSON" in str(exc.value.code)


def test_trace_validate_exits_nonzero_on_empty_dir(tmp_path):
    with pytest.raises(SystemExit) as exc:
        main(["trace-validate", str(tmp_path)])
    assert exc.value.code != 0
    assert "no trace files" in str(exc.value.code)


# ----------------------------------------------------------------------
# adaptive replication flags
# ----------------------------------------------------------------------


def test_parser_accepts_replication_flags():
    args = build_parser().parse_args(
        ["--reps-policy", "ci", "--reps-max", "8", "--rep-budget", "20",
         "campaign"]
    )
    assert args.reps_policy == "ci"
    assert args.reps_max == 8
    assert args.rep_budget == 20


def test_rep_budget_requires_an_adaptive_policy():
    with pytest.raises(SystemExit) as exc:
        main(["--rep-budget", "5", "table1"])
    assert "--rep-budget needs an adaptive --reps-policy" in str(
        exc.value.code
    )


def test_zero_replications_is_a_clean_cli_error():
    with pytest.raises(SystemExit) as exc:
        main(["--replications", "0", "table1"])
    assert "replications must be a positive" in str(exc.value.code)


def test_campaign_command_prints_the_replication_table(
    capsys, restore_campaign_defaults
):
    # Budget 0 pins every stream to its min of 2 reps: streams whose
    # rule asks for a third are denied, which drives the budget path
    # end to end at near-fixed cost.
    out = run_cli(
        capsys, "--scale", "200", "--seed", "3", "--replications", "2",
        "--reps-policy", "ci", "--reps-max", "3", "--rep-budget", "0",
        "campaign", "--versions", "TCP-PRESS",
    )
    assert "replication (ci policy):" in out
    assert "budget-exhausted" in out
    assert "reps spent:" in out and "% saved" in out
    assert "rep budget exhausted on" in out


# ----------------------------------------------------------------------
# store-diff subcommand
# ----------------------------------------------------------------------


def _put_cell(cache_dir, schema, tn=1.0):
    from repro.experiments.store import CellKey, DiskStore

    DiskStore(cache_dir).put(
        CellKey(
            version="TCP-PRESS",
            settings_key=("cli", 1),
            fault=None,
            seed=7,
            schema=schema,
        ),
        {"kind": "baseline", "tn": tn, "elapsed": 0.1},
    )


def test_store_diff_identical_stores_pass(capsys, tmp_path):
    from repro.experiments.store import SCHEMA_VERSION

    a, b = tmp_path / "a", tmp_path / "b"
    _put_cell(a, SCHEMA_VERSION)
    _put_cell(b, SCHEMA_VERSION)
    out = run_cli(capsys, "store-diff", str(a), str(b))
    assert "1 cell(s) compared, payloads identical" in out


def test_store_diff_exits_nonzero_on_payload_mismatch(tmp_path):
    from repro.experiments.store import SCHEMA_VERSION

    a, b = tmp_path / "a", tmp_path / "b"
    _put_cell(a, SCHEMA_VERSION, tn=1.0)
    _put_cell(b, SCHEMA_VERSION, tn=2.0)
    with pytest.raises(SystemExit) as exc:
        main(["store-diff", str(a), str(b)])
    assert "1 difference(s)" in str(exc.value.code)


def test_store_diff_reports_a_v4_store_as_invalidated(capsys, tmp_path):
    """Pre-v5 cells are called out as invalidated by the current
    schema — the campaign re-runs them, it never re-reads them."""
    from repro.experiments.store import SCHEMA_VERSION

    a, b = tmp_path / "a", tmp_path / "b"
    _put_cell(a, schema=4)
    _put_cell(b, schema=4)
    out = run_cli(capsys, "store-diff", str(a), str(b))
    assert (
        f"1 cell(s) under stale schema v4 — invalidated by current "
        f"schema v{SCHEMA_VERSION}" in out
    )
    assert "re-run these cells rather than re-reading them" in out
