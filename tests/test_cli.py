"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def run_cli(capsys, *argv):
    main(list(argv))
    return capsys.readouterr().out


FAST = ["--scale", "200", "--seed", "3", "--replications", "1"]


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_accepts_global_flags():
    args = build_parser().parse_args(
        ["--scale", "50", "--seed", "9", "table1"]
    )
    assert args.scale == 50.0
    assert args.seed == 9
    assert args.command == "table1"


def test_table1_command(capsys):
    out = run_cli(capsys, *FAST, "table1")
    assert "VIA-PRESS-5" in out
    assert "paper" in out


def test_timeline_command(capsys):
    out = run_cli(
        capsys, *FAST, "timeline",
        "--version", "VIA-PRESS-0", "--fault", "application-crash",
    )
    assert "VIA-PRESS-0 / application-crash" in out
    assert "availability over the run" in out


def test_timeline_rejects_unknown_fault():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["timeline", "--version", "X", "--fault", "not-a-fault"]
        )


def test_figure_command_rejects_unknown_number():
    with pytest.raises(SystemExit):
        main([*FAST, "figure", "11"])


def test_figure5_command(capsys):
    out = run_cli(capsys, *FAST, "figure", "5")
    assert "bad-param-null-pointer" in out
    assert "TCP-PRESS" in out


def test_parser_accepts_jobs_and_cache_dir(tmp_path):
    args = build_parser().parse_args(
        ["--jobs", "4", "--cache-dir", str(tmp_path), "campaign"]
    )
    assert args.jobs == 4
    assert args.cache_dir == str(tmp_path)


@pytest.fixture
def restore_campaign_defaults():
    """CLI tests mutate the process-wide campaign defaults; undo it."""
    from repro.experiments import campaign as campaign_mod

    store, jobs = campaign_mod._default_store, campaign_mod._default_jobs
    yield
    campaign_mod.configure(store=store, jobs=jobs)


def test_campaign_command_with_cache_dir(
    capsys, tmp_path, restore_campaign_defaults
):
    cache = tmp_path / "cache"
    argv = [
        *FAST, "--cache-dir", str(cache), "campaign",
        "--versions", "TCP-PRESS",
    ]
    out = run_cli(capsys, *argv)
    assert "PHASE 1" in out and "campaign:" in out
    assert "0 from cache" in out
    assert any(cache.rglob("*.json"))
    # Second invocation replays entirely from the store.
    out = run_cli(capsys, *argv)
    assert "0 executed" in out


def test_campaign_clear_cache_flag(
    capsys, tmp_path, restore_campaign_defaults
):
    cache = tmp_path / "cache"
    argv = [*FAST, "--cache-dir", str(cache)]
    run_cli(capsys, *argv, "campaign", "--versions", "TCP-PRESS")
    out = run_cli(
        capsys, *argv, "--clear-cache", "campaign", "--versions", "TCP-PRESS"
    )
    assert "0 from cache" in out
