"""Tests for the Table-2 fault catalogue."""

import pytest

from repro.faults.spec import (
    FAULT_CATALOG,
    FaultCategory,
    FaultKind,
    FaultSpec,
    category_of,
)


def test_catalog_covers_every_kind():
    assert set(FAULT_CATALOG) == set(FaultKind)


def test_table2_categories():
    assert category_of(FaultKind.LINK_DOWN) is FaultCategory.NETWORK_HARDWARE
    assert category_of(FaultKind.SWITCH_DOWN) is FaultCategory.NETWORK_HARDWARE
    assert category_of(FaultKind.NODE_CRASH) is FaultCategory.NODE
    assert category_of(FaultKind.NODE_FREEZE) is FaultCategory.NODE
    assert (
        category_of(FaultKind.KERNEL_MEMORY)
        is FaultCategory.RESOURCE_EXHAUSTION
    )
    assert (
        category_of(FaultKind.MEMORY_PINNING)
        is FaultCategory.RESOURCE_EXHAUSTION
    )
    for kind in (
        FaultKind.APP_CRASH,
        FaultKind.APP_HANG,
        FaultKind.BAD_PARAM_NULL,
        FaultKind.BAD_PARAM_OFFSET,
        FaultKind.BAD_PARAM_SIZE,
    ):
        assert category_of(kind) is FaultCategory.APPLICATION


def test_spec_label():
    s = FaultSpec(FaultKind.LINK_DOWN, target="node2", at=5.0, duration=10.0)
    assert s.label() == "link-down@node2"
    assert FaultSpec(FaultKind.SWITCH_DOWN).label() == "switch-down@switch"


def test_spec_category_passthrough():
    s = FaultSpec(FaultKind.APP_HANG, target="node0")
    assert s.category is FaultCategory.APPLICATION


def test_off_by_n_default_in_observed_range():
    """The paper draws N in 0..100 bytes (the dominant field range)."""
    assert 0 <= FaultSpec(FaultKind.BAD_PARAM_SIZE).off_by_n <= 100
