"""Tests for the Mendosus-like injector against a live mini-cluster."""

import pytest

from repro.faults.spec import FaultKind, FaultSpec
from repro.press.cluster import SMOKE_SCALE, PressCluster
from repro.press.config import TCP_PRESS, VIA_PRESS_0
from repro.transports.base import CorruptionKind


@pytest.fixture
def cluster():
    c = PressCluster(TCP_PRESS, n_nodes=3, scale=SMOKE_SCALE, seed=11)
    c.start()
    c.run_until(5.0)
    return c


def test_annotations_bracket_the_fault(cluster):
    cluster.mendosus.schedule(
        FaultSpec(FaultKind.LINK_DOWN, target="node1", at=10.0, duration=5.0)
    )
    cluster.run_until(20.0)
    assert cluster.annotations.first("fault-injected").time == 10.0
    assert cluster.annotations.first("fault-cleared").time == pytest.approx(15.0)


def test_link_fault_scoped_to_intra_cluster(cluster):
    cluster.mendosus.inject(
        FaultSpec(FaultKind.LINK_DOWN, target="node1", duration=5.0)
    )
    link = cluster.fabric.link("node1")
    assert not link.carries("tcp-seg")
    assert link.carries("http-req")


def test_link_fault_full_scope(cluster):
    cluster.mendosus.inject(
        FaultSpec(
            FaultKind.LINK_DOWN, target="node1", duration=5.0,
            params={"scope": "all"},
        )
    )
    assert not cluster.fabric.link("node1").carries("http-req")


def test_switch_fault_and_repair(cluster):
    cluster.mendosus.inject(FaultSpec(FaultKind.SWITCH_DOWN, duration=3.0))
    assert not cluster.fabric.switch.up
    cluster.run_until(cluster.engine.now + 4.0)
    assert cluster.fabric.switch.up


def test_node_crash_marks_cleared_at_reboot(cluster):
    t0 = cluster.engine.now
    cluster.mendosus.inject(FaultSpec(FaultKind.NODE_CRASH, target="node1"))
    assert not cluster.nodes["node1"].up
    cluster.run_until(t0 + cluster.nodes["node1"].reboot_time + 2.0)
    assert cluster.nodes["node1"].up
    cleared = cluster.annotations.first("fault-cleared")
    assert cleared is not None
    assert cleared.time == pytest.approx(t0 + 60.0, abs=1.0)


def test_node_freeze_and_thaw(cluster):
    cluster.mendosus.inject(
        FaultSpec(FaultKind.NODE_FREEZE, target="node1", duration=4.0)
    )
    assert cluster.nodes["node1"].frozen
    cluster.run_until(cluster.engine.now + 5.0)
    assert not cluster.nodes["node1"].frozen


def test_kernel_memory_fault_window(cluster):
    cluster.mendosus.inject(
        FaultSpec(FaultKind.KERNEL_MEMORY, target="node1", duration=4.0)
    )
    assert cluster.nodes["node1"].kernel_memory.fault_active
    cluster.run_until(cluster.engine.now + 5.0)
    assert not cluster.nodes["node1"].kernel_memory.fault_active


def test_pin_fault_halves_current_pinned():
    c = PressCluster(
        __import__("repro.press.config", fromlist=["VIA_PRESS_5"]).VIA_PRESS_5,
        n_nodes=3,
        scale=SMOKE_SCALE,
        seed=11,
    )
    c.start()
    c.run_until(5.0)
    pinned_before = c.nodes["node1"].pinnable.pinned
    c.mendosus.inject(
        FaultSpec(FaultKind.MEMORY_PINNING, target="node1", duration=5.0)
    )
    pm = c.nodes["node1"].pinnable
    assert pm.fault_active
    assert pm.effective_limit == pytest.approx(pinned_before * 0.5, rel=0.01)


def test_app_crash_cleared_on_restart(cluster):
    t0 = cluster.engine.now
    cluster.mendosus.inject(FaultSpec(FaultKind.APP_CRASH, target="node1"))
    assert not cluster.nodes["node1"].process.alive
    cluster.run_until(t0 + 10.0)
    assert cluster.nodes["node1"].process.running
    cleared = cluster.annotations.first("fault-cleared")
    assert cleared.time == pytest.approx(t0 + 5.0, abs=1.0)  # restart delay


def test_app_hang_resumes(cluster):
    cluster.mendosus.inject(
        FaultSpec(FaultKind.APP_HANG, target="node1", duration=3.0)
    )
    assert not cluster.nodes["node1"].process.running
    assert cluster.nodes["node1"].process.alive
    cluster.run_until(cluster.engine.now + 4.0)
    assert cluster.nodes["node1"].process.running


def test_bad_param_interposer_fires_exactly_once():
    c = PressCluster(VIA_PRESS_0, n_nodes=3, scale=SMOKE_SCALE, seed=11)
    c.start()
    c.run_until(5.0)
    transport = c.transports["node1"]
    c.mendosus.inject(
        FaultSpec(FaultKind.BAD_PARAM_NULL, target="node1")
    )
    assert len(transport.send_interposers) == 1
    c.run_until(c.engine.now + 20.0)
    assert transport.send_interposers == []  # self-removed after one call
    assert c.annotations.first("fault-cleared") is not None


def test_injected_log_kept(cluster):
    spec = FaultSpec(FaultKind.APP_HANG, target="node1", duration=1.0)
    cluster.mendosus.inject(spec)
    assert cluster.mendosus.injected == [spec]
