"""Integration tests: the full PRESS cluster under every fault class.

These are compressed versions of the paper's phase-1 experiments, run at
SMOKE scale — each asserts the *qualitative* behaviour the corresponding
figure shows.
"""

import pytest

from repro.faults.spec import FaultKind, FaultSpec
from repro.press.cluster import SMOKE_SCALE, PressCluster
from repro.press.config import ALL_VERSIONS


def make(version, seed=3, **kw):
    cluster = PressCluster(
        ALL_VERSIONS[version], scale=SMOKE_SCALE, seed=seed, **kw
    )
    cluster.start()
    return cluster


def members_of(cluster):
    return {n: sorted(s.members) for n, s in cluster.servers.items()}


FULL = ["node0", "node1", "node2", "node3"]
SPLINTER = {"node0": ["node0", "node1", "node3"],
            "node1": ["node0", "node1", "node3"],
            "node2": ["node2"],
            "node3": ["node0", "node1", "node3"]}


class TestFaultFree:
    @pytest.mark.parametrize("version", list(ALL_VERSIONS))
    def test_steady_state_serves_offered_load(self, version):
        c = make(version)
        c.run_until(60.0)
        measured = c.measured_rate(15.0, 60.0)
        offered = c.workload.total_rate * c.scale.report_factor
        assert measured == pytest.approx(offered, rel=0.12)
        assert c.monitor.availability() > 0.99

    def test_throughput_ordering_follows_table1(self):
        rates = {}
        for version in ALL_VERSIONS:
            c = make(version, utilization=1.05)
            c.run_until(60.0)
            rates[version] = c.measured_rate(15.0, 60.0)
        assert rates["TCP-PRESS"] < rates["VIA-PRESS-0"]
        assert rates["VIA-PRESS-0"] < rates["VIA-PRESS-5"]

    def test_prewarm_gives_high_hit_ratio(self):
        c = make("TCP-PRESS")
        c.run_until(40.0)
        for server in c.servers.values():
            assert server.cache.hit_ratio() > 0.85

    def test_requests_are_forwarded_for_locality(self):
        c = make("VIA-PRESS-5")
        c.run_until(40.0)
        total_fwd = sum(s.requests_forwarded for s in c.servers.values())
        total = sum(s.requests_handled for s in c.servers.values())
        assert total_fwd / total > 0.5  # ~3/4 in a warmed 4-node cluster


class TestLinkFault:
    """Figure 2."""

    def _link_fault(self, version):
        c = make(version)
        c.mendosus.schedule(
            FaultSpec(FaultKind.LINK_DOWN, target="node2", at=30.0, duration=40.0)
        )
        return c

    def test_tcp_press_stalls_whole_cluster(self):
        c = self._link_fault("TCP-PRESS")
        c.run_until(65.0)
        stall = c.measured_rate(45.0, 65.0)
        normal = c.measured_rate(10.0, 30.0)
        assert stall < normal * 0.1
        assert members_of(c)["node0"] == FULL  # no reconfiguration

    def test_tcp_press_recovers_after_repair_without_reconfiguring(self):
        c = self._link_fault("TCP-PRESS")
        c.run_until(180.0)
        assert c.measured_rate(140.0, 180.0) > c.measured_rate(10, 30) * 0.8
        assert members_of(c)["node0"] == FULL

    def test_heartbeats_splinter_in_about_15s(self):
        c = self._link_fault("TCP-PRESS-HB")
        c.run_until(120.0)
        assert members_of(c) == SPLINTER
        det = [t for t in c.annotations.times("reconfigured") if t >= 30.0]
        assert det and 40.0 <= det[0] <= 50.0

    def test_via_detects_almost_instantly(self):
        c = self._link_fault("VIA-PRESS-5")
        c.run_until(40.0)
        det = [t for t in c.annotations.times("reconfigured") if t >= 30.0]
        assert det and det[0] - 30.0 < 2.0

    @pytest.mark.parametrize("version", ["TCP-PRESS-HB", "VIA-PRESS-0"])
    def test_partitions_never_remerge_without_operator(self, version):
        """The paper's surprise: no automatic merge after the link heals."""
        c = self._link_fault(version)
        c.run_until(160.0)
        assert members_of(c) == SPLINTER
        assert c.is_partitioned()

    def test_operator_reset_restores_full_cluster(self):
        c = self._link_fault("VIA-PRESS-5")
        c.run_until(120.0)
        assert c.operator_reset()
        c.run_until(180.0)
        assert members_of(c)["node2"] == FULL
        assert not c.is_partitioned()

    def test_operator_reset_noop_when_whole(self):
        c = make("TCP-PRESS")
        c.run_until(30.0)
        assert not c.operator_reset()


class TestNodeCrash:
    """Figure 3."""

    def _crash(self, version):
        c = make(version)
        c.mendosus.schedule(FaultSpec(FaultKind.NODE_CRASH, target="node2", at=30.0))
        return c

    def test_tcp_press_rejoin_disregarded(self):
        """The rebooted node's join attempts are ignored; it ends up a
        stranded singleton while the others form a 3-node group."""
        c = self._crash("TCP-PRESS")
        c.run_until(250.0)
        assert members_of(c)["node2"] == ["node2"]
        assert members_of(c)["node0"] == ["node0", "node1", "node3"]
        assert c.annotations.first("join-gave-up") is not None

    @pytest.mark.parametrize("version", ["TCP-PRESS-HB", "VIA-PRESS-5"])
    def test_fast_detectors_reintegrate_fully(self, version):
        c = self._crash(version)
        c.run_until(250.0)
        assert members_of(c) == {n: FULL for n in FULL}
        assert c.annotations.first("rejoined") is not None

    def test_reboot_restarts_press_automatically(self):
        c = self._crash("VIA-PRESS-0")
        c.run_until(150.0)
        assert c.nodes["node2"].process.running
        assert c.nodes["node2"].process.incarnation == 2


class TestMemoryFaults:
    """Figure 4."""

    def test_kernel_memory_stalls_tcp_press(self):
        c = make("TCP-PRESS")
        c.mendosus.schedule(
            FaultSpec(FaultKind.KERNEL_MEMORY, target="node2", at=30.0, duration=40.0)
        )
        c.run_until(65.0)
        assert c.measured_rate(45.0, 65.0) < c.measured_rate(10, 30) * 0.15

    def test_kernel_memory_splinters_tcp_hb(self):
        c = make("TCP-PRESS-HB")
        c.mendosus.schedule(
            FaultSpec(FaultKind.KERNEL_MEMORY, target="node2", at=30.0, duration=40.0)
        )
        c.run_until(120.0)
        assert members_of(c)["node0"] == ["node0", "node1", "node3"]

    @pytest.mark.parametrize("version", ["VIA-PRESS-0", "VIA-PRESS-5"])
    def test_kernel_memory_does_not_touch_via(self, version):
        """Pre-allocation makes VIA immune to the allocator fault."""
        c = make(version)
        c.mendosus.schedule(
            FaultSpec(FaultKind.KERNEL_MEMORY, target="node2", at=30.0, duration=40.0)
        )
        c.run_until(75.0)
        during = c.measured_rate(32.0, 70.0)
        before = c.measured_rate(10.0, 30.0)
        assert during > before * 0.9
        assert members_of(c)["node0"] == FULL

    def test_pin_fault_sheds_zero_copy_cache(self):
        c = make("VIA-PRESS-5")
        c.mendosus.schedule(
            FaultSpec(FaultKind.MEMORY_PINNING, target="node2", at=30.0, duration=60.0)
        )
        c.run_until(95.0)
        node2 = c.servers["node2"]
        others = [c.servers[n].cache.hit_ratio() for n in ("node0", "node1")]
        assert node2.cache.pin_failures > 0
        assert node2.cache.hit_ratio() < min(others)

    @pytest.mark.parametrize("version", ["TCP-PRESS", "VIA-PRESS-0"])
    def test_pin_fault_ignored_without_dynamic_pinning(self, version):
        c = make(version)
        c.mendosus.schedule(
            FaultSpec(FaultKind.MEMORY_PINNING, target="node2", at=30.0, duration=40.0)
        )
        c.run_until(75.0)
        assert c.measured_rate(32.0, 70.0) > c.measured_rate(10, 30) * 0.9


class TestApplicationFaults:
    """Figure 5 and the crash/hang classes."""

    def test_app_crash_recovers_via_restart_and_rejoin(self):
        c = make("VIA-PRESS-5")
        c.mendosus.schedule(FaultSpec(FaultKind.APP_CRASH, target="node2", at=30.0))
        c.run_until(120.0)
        assert members_of(c) == {n: FULL for n in FULL}
        assert c.nodes["node2"].daemon.restarts == 1

    def test_null_pointer_harmless_on_tcp(self):
        c = make("TCP-PRESS")
        c.mendosus.schedule(
            FaultSpec(FaultKind.BAD_PARAM_NULL, target="node2", at=30.0)
        )
        c.run_until(90.0)
        assert all(s.fail_fasts == 0 for s in c.servers.values())
        assert c.measured_rate(35.0, 90.0) > c.measured_rate(10, 30) * 0.9

    def test_null_pointer_kills_one_via0_process(self):
        c = make("VIA-PRESS-0")
        c.mendosus.schedule(
            FaultSpec(FaultKind.BAD_PARAM_NULL, target="node2", at=30.0)
        )
        c.run_until(120.0)
        assert sum(s.fail_fasts for s in c.servers.values()) == 1
        assert c.servers["node2"].fail_fasts == 1
        assert members_of(c)["node0"] == FULL  # recovered via restart

    def test_null_pointer_kills_two_rdma_processes(self):
        """Remote writes diffuse the fault to both endpoints."""
        c = make("VIA-PRESS-5")
        c.mendosus.schedule(
            FaultSpec(FaultKind.BAD_PARAM_NULL, target="node2", at=30.0)
        )
        c.run_until(120.0)
        assert sum(s.fail_fasts for s in c.servers.values()) == 2
        assert members_of(c)["node0"] == FULL

    def test_off_by_size_fail_fasts_tcp_receiver(self):
        c = make("TCP-PRESS")
        c.mendosus.schedule(
            FaultSpec(FaultKind.BAD_PARAM_SIZE, target="node2", at=30.0, off_by_n=21)
        )
        c.run_until(150.0)
        assert sum(s.fail_fasts for s in c.servers.values()) == 1
        assert c.servers["node2"].fail_fasts == 0  # receiver dies, not sender

    def test_app_hang_stalls_tcp_but_not_via_cluster(self):
        specs = lambda: FaultSpec(
            FaultKind.APP_HANG, target="node2", at=30.0, duration=40.0
        )
        tcp = make("TCP-PRESS")
        tcp.mendosus.schedule(specs())
        tcp.run_until(70.0)
        via = make("VIA-PRESS-5")
        via.mendosus.schedule(specs())
        via.run_until(70.0)
        tcp_during = tcp.measured_rate(45.0, 70.0) / tcp.measured_rate(10, 30)
        via_during = via.measured_rate(45.0, 70.0) / via.measured_rate(10, 30)
        assert tcp_during < 0.15  # whole cluster waits
        assert via_during > 0.35  # only the hung node's share suffers

    def test_app_hang_tcp_press_deduces_no_fault(self):
        c = make("TCP-PRESS")
        c.mendosus.schedule(
            FaultSpec(FaultKind.APP_HANG, target="node2", at=30.0, duration=40.0)
        )
        c.run_until(150.0)
        assert members_of(c)["node0"] == FULL
        assert c.measured_rate(110.0, 150.0) > c.measured_rate(10, 30) * 0.8

    def test_app_hang_tcp_hb_splinters_incorrectly(self):
        c = make("TCP-PRESS-HB")
        c.mendosus.schedule(
            FaultSpec(FaultKind.APP_HANG, target="node2", at=30.0, duration=40.0)
        )
        c.run_until(150.0)
        assert "node2" not in members_of(c)["node0"]


class TestSwitchFault:
    def test_switch_fault_outage_for_everyone(self):
        c = make("VIA-PRESS-5")
        c.mendosus.schedule(
            FaultSpec(FaultKind.SWITCH_DOWN, at=30.0, duration=30.0)
        )
        c.run_until(55.0)
        assert c.measured_rate(35.0, 55.0) == 0.0
