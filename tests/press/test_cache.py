"""Tests for the file cache: LRU, broadcasts, pinning interplay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osim.memory import PinnableMemory
from repro.press.cache import FileCache


def test_insert_and_lookup():
    c = FileCache(capacity_bytes=100)
    assert c.insert("f1", 40)
    assert c.lookup("f1") == 40
    assert c.hits == 1


def test_miss_counted():
    c = FileCache(capacity_bytes=100)
    assert c.lookup("nope") is None
    assert c.misses == 1
    assert c.hit_ratio() == 0.0


def test_lru_eviction_order():
    c = FileCache(capacity_bytes=100)
    c.insert("a", 40)
    c.insert("b", 40)
    c.lookup("a")  # refresh a
    c.insert("c", 40)  # evicts b (LRU)
    assert "a" in c and "c" in c and "b" not in c


def test_oversized_file_not_cached():
    c = FileCache(capacity_bytes=100)
    assert not c.insert("big", 101)


def test_reinsert_refreshes_without_duplicating():
    c = FileCache(capacity_bytes=100)
    c.insert("a", 40)
    c.insert("a", 40)
    assert c.used_bytes == 40
    assert len(c) == 1


def test_change_callbacks_fire():
    c = FileCache(capacity_bytes=80)
    events = []
    c.on_change.append(lambda action, f: events.append((action, f)))
    c.insert("a", 40)
    c.insert("b", 40)
    c.insert("c", 40)  # evicts a
    assert ("add", "a") in events
    assert ("evict", "a") in events
    assert events[-1] == ("add", "c")


def test_explicit_evict():
    c = FileCache(capacity_bytes=100)
    c.insert("a", 40)
    assert c.evict("a")
    assert not c.evict("a")
    assert c.used_bytes == 0


def test_pinned_cache_pins_and_unpins():
    pm = PinnableMemory(physical_bytes=400)  # limit 200
    c = FileCache(capacity_bytes=200, pinned=True, pin_memory=pm)
    c.insert("a", 100)
    assert pm.pinned == 100
    c.evict("a")
    assert pm.pinned == 0


def test_pin_failure_sheds_lru_files():
    pm = PinnableMemory(physical_bytes=400)  # limit 200
    c = FileCache(capacity_bytes=1000, pinned=True, pin_memory=pm)
    c.insert("a", 100)
    c.insert("b", 100)  # pinned = 200 = limit
    assert c.insert("c", 100)  # must shed a to pin c
    assert "a" not in c
    assert pm.pinned == 200
    assert c.pin_failures >= 1


def test_unpinnable_file_not_cached():
    pm = PinnableMemory(physical_bytes=400)
    pm.inject_pin_fault(0)
    c = FileCache(capacity_bytes=1000, pinned=True, pin_memory=pm)
    assert not c.insert("a", 100)
    assert len(c) == 0


def test_shed_to_pin_limit():
    """The injected pin fault forces VIA-PRESS-5 to drop cached files."""
    pm = PinnableMemory(physical_bytes=400)
    c = FileCache(capacity_bytes=1000, pinned=True, pin_memory=pm)
    for i in range(4):
        c.insert(f"f{i}", 50)  # pinned = 200
    pm.inject_pin_fault(effective_limit=100)
    shed = c.shed_to_pin_limit()
    assert shed == 2
    assert pm.pinned == 100


def test_preload_respects_budget_and_skips_callbacks():
    c = FileCache(capacity_bytes=100)
    events = []
    c.on_change.append(lambda a, f: events.append(a))
    loaded = c.preload(["a", "b", "c"], 40)
    assert loaded == 2
    assert events == []


def test_preload_stops_at_pin_limit():
    pm = PinnableMemory(physical_bytes=200)  # limit 100
    c = FileCache(capacity_bytes=1000, pinned=True, pin_memory=pm)
    loaded = c.preload([f"f{i}" for i in range(10)], 30)
    assert loaded == 3
    assert pm.pinned == 90


def test_release_returns_pins_silently():
    pm = PinnableMemory(physical_bytes=400)
    c = FileCache(capacity_bytes=200, pinned=True, pin_memory=pm)
    events = []
    c.on_change.append(lambda a, f: events.append(a))
    c.insert("a", 100)
    del events[:]
    c.release()
    assert pm.pinned == 0
    assert events == []
    assert len(c) == 0


def test_pinned_cache_requires_pin_memory():
    with pytest.raises(ValueError):
        FileCache(capacity_bytes=10, pinned=True)


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=20), st.integers(1, 50)),
        max_size=100,
    )
)
def test_property_used_bytes_never_exceeds_capacity(ops):
    c = FileCache(capacity_bytes=100)
    for key, size in ops:
        c.insert(f"f{key}", size)
        assert c.used_bytes <= c.capacity_bytes
        assert c.used_bytes == sum(c._entries.values())


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "lookup", "evict"]),
            st.integers(min_value=0, max_value=10),
        ),
        max_size=120,
    )
)
def test_property_pinned_bytes_track_cache_exactly(ops):
    pm = PinnableMemory(physical_bytes=10_000)
    c = FileCache(capacity_bytes=500, pinned=True, pin_memory=pm)
    for op, key in ops:
        name = f"f{key}"
        if op == "insert":
            c.insert(name, 37)
        elif op == "lookup":
            c.lookup(name)
        else:
            c.evict(name)
        assert pm.pinned == c.used_bytes
