"""Tests for the version matrix and cost scaling."""

import pytest

from repro.press.analysis import estimate_capacity
from repro.press.config import (
    ALL_VERSIONS,
    PAPER_TABLE1_THROUGHPUT,
    TCP_PRESS,
    TCP_PRESS_HB,
    VIA_PRESS_0,
    VIA_PRESS_3,
    VIA_PRESS_5,
)
from repro.workload.trace import FileSet


def test_version_matrix_matches_table1():
    assert TCP_PRESS.substrate == "tcp" and not TCP_PRESS.use_heartbeats
    assert TCP_PRESS_HB.substrate == "tcp" and TCP_PRESS_HB.use_heartbeats
    assert VIA_PRESS_0.substrate == "via" and not VIA_PRESS_0.remote_writes
    assert VIA_PRESS_3.remote_writes and not VIA_PRESS_3.zero_copy
    assert VIA_PRESS_5.remote_writes and VIA_PRESS_5.zero_copy
    assert set(ALL_VERSIONS) == set(PAPER_TABLE1_THROUGHPUT)


def test_heartbeat_threshold_is_three_beats_of_five_seconds():
    """The paper's 15-second detection comes from 3 x 5s."""
    assert TCP_PRESS_HB.heartbeat_interval == 5.0
    assert TCP_PRESS_HB.heartbeat_threshold == 3


def test_capacity_estimates_match_paper_within_3pct():
    fs = FileSet()
    for name, cfg in ALL_VERSIONS.items():
        est = estimate_capacity(cfg, fs, 4)
        paper = PAPER_TABLE1_THROUGHPUT[name]
        assert est.cluster_capacity == pytest.approx(paper, rel=0.03), name


def test_capacity_ordering_matches_paper():
    fs = FileSet()
    caps = {
        name: estimate_capacity(cfg, fs, 4).cluster_capacity
        for name, cfg in ALL_VERSIONS.items()
    }
    assert (
        caps["TCP-PRESS"]
        < caps["VIA-PRESS-0"]
        < caps["VIA-PRESS-3"]
        < caps["VIA-PRESS-5"]
    )


def test_scaling_divides_capacity_exactly_by_factor():
    fs_full = FileSet(file_bytes=10_240)
    fs_scaled = FileSet(file_bytes=1024)
    full = estimate_capacity(TCP_PRESS, fs_full, 4).cluster_capacity
    scaled = estimate_capacity(
        TCP_PRESS.scaled(10.0), fs_scaled, 4
    ).cluster_capacity
    assert scaled * 10 == pytest.approx(full, rel=0.02)


def test_scaling_identity_at_factor_one():
    assert TCP_PRESS.scaled(1.0) is TCP_PRESS


def test_single_node_capacity_has_no_forwarding():
    fs = FileSet()
    est = estimate_capacity(TCP_PRESS, fs, 1)
    assert est.forward_fraction == 0.0


def test_zero_copy_version_has_no_per_byte_costs():
    assert VIA_PRESS_5.transport_costs.send_copy_per_byte == 0.0
    assert VIA_PRESS_5.http.respond_per_byte == 0.0
    assert VIA_PRESS_3.transport_costs.send_copy_per_byte > 0.0
