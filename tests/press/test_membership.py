"""Tests for the membership protocol: ring, heartbeats, join/exclude."""

from typing import Dict, List

import pytest

from repro.osim.process import SimProcess
from repro.press.membership import Membership
from repro.sim.engine import Engine
from repro.transports.base import Message


class Net:
    """An in-memory datagram network connecting Membership instances."""

    def __init__(self, engine):
        self.engine = engine
        self.members: Dict[str, Membership] = {}
        self.dropped = set()  # node ids whose datagrams are dropped

    def sender(self, from_id: str):
        def send(to: str, msg: Message) -> None:
            if from_id in self.dropped or to in self.dropped:
                return
            target = self.members.get(to)
            if target is None or not target.process.running:
                return
            self.engine.call_soon(target.handle_datagram, from_id, msg)

        return send


def build(engine, ids=("n0", "n1", "n2", "n3"), heartbeats=True):
    net = Net(engine)
    events: List[tuple] = []
    for nid in ids:
        proc = SimProcess(engine, nid)
        proc.start()
        m = Membership(
            engine=engine,
            self_id=nid,
            all_ids=list(ids),
            process=proc,
            send_datagram=None,  # wired below
            use_heartbeats=heartbeats,
            heartbeat_interval=5.0,
            heartbeat_threshold=3,
            join_retry_interval=2.0,
            join_max_retries=3,
            on_exclude=lambda peer, why, n=nid: events.append(("exclude", n, peer)),
            on_include=lambda peer, n=nid: events.append(("include", n, peer)),
            on_joined=lambda members, n=nid: events.append(("joined", n)),
            on_join_gave_up=lambda n=nid: events.append(("gave-up", n)),
            connect_to=lambda peer, cb, n=nid: engine.call_soon(
                _fake_connect, net, n, peer, cb
            ),
            annotate=lambda label, detail: None,
        )
        m.send_datagram = net.sender(nid)
        net.members[nid] = m
    return net, events


def _fake_connect(net, from_id, peer, cb) -> None:
    """Successful connect also triggers the acceptor's include."""
    target = net.members.get(peer)
    if target is not None and target.process.running and from_id not in net.dropped:
        target.include(from_id)
        cb(True)
    else:
        cb(False)


def bootstrap_all(net):
    for m in net.members.values():
        m.bootstrap()


def test_ring_geometry():
    e = Engine()
    net, _ = build(e)
    bootstrap_all(net)
    m = net.members["n1"]
    assert m.successor() == "n2"
    assert m.predecessor() == "n0"
    assert net.members["n3"].successor() == "n0"


def test_singleton_has_no_ring():
    e = Engine()
    net, _ = build(e, ids=("n0",))
    net.members["n0"].bootstrap()
    assert net.members["n0"].successor() is None
    assert net.members["n0"].predecessor() is None
    assert net.members["n0"].singleton


def test_exclusion_broadcast_converges_views():
    e = Engine()
    net, events = build(e)
    bootstrap_all(net)
    net.members["n1"].exclude("n2", "test")
    e.run(until=1.0)
    for nid in ("n0", "n1", "n3"):
        assert "n2" not in net.members[nid].members, nid


def test_exclude_self_and_nonmember_are_noops():
    e = Engine()
    net, _ = build(e)
    bootstrap_all(net)
    m = net.members["n0"]
    m.exclude("n0", "x")
    m.exclude("n9", "x")
    assert len(m.members) == 4


def test_heartbeats_keep_healthy_cluster_intact():
    e = Engine()
    net, events = build(e)
    bootstrap_all(net)
    e.run(until=120.0)
    assert all(len(m.members) == 4 for m in net.members.values())
    assert not [ev for ev in events if ev[0] == "exclude"]


def test_silent_node_excluded_after_three_missed_beats():
    e = Engine()
    net, events = build(e)
    bootstrap_all(net)
    e.call_after(20.0, net.members["n2"].process.sigstop)
    e.run(until=60.0)
    # n3 (successor of n2) misses 3 beats -> excludes n2 at ~35-40s.
    assert ("exclude", "n3", "n2") in events
    for nid in ("n0", "n1", "n3"):
        assert "n2" not in net.members[nid].members


def test_detection_latency_is_about_fifteen_seconds():
    e = Engine()
    net, events = build(e)
    bootstrap_all(net)
    timestamps = []
    net.members["n3"].on_exclude = lambda p, w: timestamps.append(e.now)
    e.call_after(17.5, net.members["n2"].process.sigstop)  # between beats
    e.run(until=60.0)
    assert timestamps
    delay = timestamps[0] - 17.5
    assert 10.0 <= delay <= 25.0  # 3 beats of 5s, phase-dependent


def test_no_heartbeats_no_detection():
    e = Engine()
    net, events = build(e, heartbeats=False)
    bootstrap_all(net)
    e.call_after(10.0, net.members["n2"].process.sigstop)
    e.run(until=100.0)
    assert not [ev for ev in events if ev[0] == "exclude"]


def test_join_answered_by_lowest_id_member():
    e = Engine()
    net, events = build(e)
    bootstrap_all(net)
    for m in net.members.values():
        m.exclude("n3", "crash", broadcast=False)
    net.members["n3"].process.exit("crash")
    net.members["n3"].process.start()
    net.members["n3"].start_join()
    e.run(until=10.0)
    assert ("joined", "n3") in events
    assert sorted(net.members["n3"].members) == ["n0", "n1", "n2", "n3"]


def test_join_disregarded_while_still_a_member():
    """The paper's hard-reboot timing hole: join requests from a node the
    cluster still believes to be a member are ignored."""
    e = Engine()
    net, events = build(e)
    bootstrap_all(net)
    # n3 restarts but nobody noticed it ever left.
    net.members["n3"].process.exit("crash")
    net.members["n3"].process.start()
    net.members["n3"].start_join()
    e.run(until=30.0)
    assert ("gave-up", "n3") in events
    assert net.members["n3"].members == ["n3"]


def test_join_gives_up_after_max_retries():
    e = Engine()
    net, events = build(e, ids=("n0", "n1"))
    net.members["n0"].bootstrap()
    net.dropped.add("n1")  # all of n1's datagrams vanish
    net.members["n1"].start_join()
    e.run(until=60.0)
    assert ("gave-up", "n1") in events


def test_ring_reforms_after_exclusion():
    e = Engine()
    net, _ = build(e)
    bootstrap_all(net)
    net.members["n1"].exclude("n2", "x")
    e.run(until=1.0)
    assert net.members["n1"].successor() == "n3"
    assert net.members["n3"].predecessor() == "n1"


def test_include_is_idempotent():
    e = Engine()
    net, events = build(e)
    bootstrap_all(net)
    net.members["n0"].include("n1")  # already a member
    assert net.members["n0"].members.count("n1") == 1


def test_stale_timers_die_with_incarnation():
    e = Engine()
    net, events = build(e)
    bootstrap_all(net)
    proc = net.members["n0"].process
    proc.exit("crash")
    proc.start()
    # Old incarnation's heartbeat timers must not fire for the new one.
    e.run(until=60.0)  # would raise / misbehave if stale timers acted
    assert proc.incarnation == 2
