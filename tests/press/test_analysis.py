"""Tests for the analytic capacity estimator."""

import pytest

from repro.press.analysis import CapacityEstimate, estimate_capacity
from repro.press.config import TCP_PRESS, VIA_PRESS_5
from repro.workload.trace import FileSet


def test_offered_rate_scales_with_utilization():
    est = estimate_capacity(TCP_PRESS, FileSet(), 4)
    assert est.offered_rate(0.5) == pytest.approx(est.cluster_capacity / 2)
    assert est.offered_rate(1.0) == pytest.approx(est.cluster_capacity)


def test_capacity_scales_with_node_count():
    fs = FileSet()
    two = estimate_capacity(TCP_PRESS, fs, 2)
    four = estimate_capacity(TCP_PRESS, fs, 4)
    # More nodes: more CPU, but also a higher forward fraction, so the
    # gain is sublinear — between 1x and 2x.
    assert four.cluster_capacity > two.cluster_capacity
    assert four.cluster_capacity < 2 * two.cluster_capacity


def test_forward_fraction():
    fs = FileSet()
    assert estimate_capacity(TCP_PRESS, fs, 4).forward_fraction == 0.75
    assert estimate_capacity(TCP_PRESS, fs, 1).forward_fraction == 0.0


def test_bigger_files_cost_more_for_copying_transports():
    small = estimate_capacity(TCP_PRESS, FileSet(file_bytes=1024), 4)
    big = estimate_capacity(TCP_PRESS, FileSet(file_bytes=65536), 4)
    assert big.per_request_cpu > small.per_request_cpu

    # Zero-copy only pays fixed per-message costs for the data path, so
    # file size moves its capacity much less.
    v5_small = estimate_capacity(VIA_PRESS_5, FileSet(file_bytes=1024), 4)
    v5_big = estimate_capacity(VIA_PRESS_5, FileSet(file_bytes=65536), 4)
    tcp_drop = small.cluster_capacity / big.cluster_capacity
    v5_drop = v5_small.cluster_capacity / v5_big.cluster_capacity
    assert v5_drop < tcp_drop


def test_estimate_matches_measured_saturation():
    """The estimator's purpose: predict where the simulation saturates."""
    from repro.press.cluster import SMOKE_SCALE, PressCluster

    cluster = PressCluster(TCP_PRESS, scale=SMOKE_SCALE, seed=2, utilization=1.2)
    cluster.start()
    cluster.run_until(80.0)
    measured = cluster.measured_rate(30.0, 80.0)
    predicted = cluster.capacity.cluster_capacity * cluster.scale.report_factor
    assert measured == pytest.approx(predicted, rel=0.08)
