"""Unit-level tests of PressServer behaviours on a small live cluster."""

import pytest

from repro.press.cluster import SMOKE_SCALE, PressCluster
from repro.press.config import TCP_PRESS, VIA_PRESS_5
from repro.transports.base import Message


@pytest.fixture
def cluster():
    c = PressCluster(TCP_PRESS, n_nodes=3, scale=SMOKE_SCALE, seed=21)
    c.start()
    c.run_until(10.0)
    return c


def test_prewarm_partitions_hot_files_across_nodes(cluster):
    caches = [set(s.cache.keys()) for s in cluster.servers.values()]
    assert all(caches)
    for i, a in enumerate(caches):
        for b in caches[i + 1:]:
            assert not (a & b)  # disjoint placement


def test_directory_routes_to_cache_owner(cluster):
    s0 = cluster.servers["node0"]
    a_file = next(iter(cluster.servers["node1"].cache.keys()))
    assert s0.directory[a_file] == "node1"


def test_forwarded_request_served_remotely(cluster):
    before = cluster.servers["node1"].remote_serves
    cluster.run_until(40.0)
    assert cluster.servers["node1"].remote_serves > before


def test_cache_updates_propagate_to_peers():
    c = PressCluster(TCP_PRESS, n_nodes=2, scale=SMOKE_SCALE, seed=4)
    c.start()
    c.run_until(5.0)
    s0, s1 = c.servers["node0"], c.servers["node1"]
    fresh = "f059999"  # unpopular: not prewarmed anywhere
    assert fresh not in s0.directory
    s1.cache.insert(fresh, c.fileset.file_bytes)
    c.run_until(c.engine.now + 2.0)
    assert s0.directory.get(fresh) == "node1"


def test_eviction_removes_directory_entry():
    c = PressCluster(TCP_PRESS, n_nodes=2, scale=SMOKE_SCALE, seed=4)
    c.start()
    c.run_until(5.0)
    s0, s1 = c.servers["node0"], c.servers["node1"]
    victim = next(iter(s1.cache.keys()))
    s1.cache.evict(victim)
    c.run_until(c.engine.now + 2.0)
    assert victim not in s0.directory


def test_exclusion_purges_peer_state(cluster):
    s0 = cluster.servers["node0"]
    assert any(owner == "node2" for owner in s0.directory.values())
    s0.membership.exclude("node2", "test")
    assert not any(owner == "node2" for owner in s0.directory.values())
    assert cluster.transports["node0"].channel("node2") is None


def test_fail_fast_policy_kills_process(cluster):
    s1 = cluster.servers["node1"]
    s1._on_fatal("descriptor-error:test")
    assert not cluster.nodes["node1"].process.alive
    assert s1.fail_fasts == 1
    assert cluster.annotations.first("fail-fast") is not None


def test_restart_rebuilds_clean_state(cluster):
    node = cluster.nodes["node1"]
    old_cache = cluster.servers["node1"].cache
    warm_size = len(old_cache)
    node.process.exit("bug")
    cluster.run_until(cluster.engine.now + 10.0)
    assert node.process.incarnation == 2
    assert cluster.servers["node1"].cache is not old_cache
    # The new incarnation starts cold (it may have cached a handful of
    # files since the restart, but nothing like the prewarmed set).
    assert len(cluster.servers["node1"].cache) < warm_size / 10


def test_rejoin_transfers_cache_info():
    c = PressCluster(VIA_PRESS_5, n_nodes=3, scale=SMOKE_SCALE, seed=21)
    c.start()
    c.run_until(10.0)
    node = c.nodes["node1"]
    node.process.exit("bug")
    c.run_until(c.engine.now + 15.0)
    assert sorted(c.servers["node1"].members) == ["node0", "node1", "node2"]
    # The rejoiner learned where the other nodes' files live.
    s1 = c.servers["node1"]
    owners = set(s1.directory.values())
    assert {"node0", "node2"} <= owners


def test_broken_forward_falls_back_to_local_serve(cluster):
    s0 = cluster.servers["node0"]
    target_file = next(iter(cluster.servers["node2"].cache.keys()))
    cluster.nodes["node2"].crash(transient=False)
    cluster.run_until(cluster.engine.now + 1.0)
    from repro.press.http import HttpRequest

    before = s0.disk_reads
    req = HttpRequest.fresh("client0", target_file, cluster.engine.now)
    # node0 still believes node2 is a member (TCP, no heartbeats), but
    # the channel send fails broken -> local fallback via disk.
    s0.membership.exclude("node2", "test-setup")
    s0._handle_request(req)
    cluster.run_until(cluster.engine.now + 2.0)
    assert s0.disk_reads > before
