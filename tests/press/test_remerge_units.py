"""Unit tests for the re-merge yield decision (pure protocol logic)."""

import pytest

from repro.osim.process import SimProcess
from repro.press.membership import Membership
from repro.sim.engine import Engine


def make_membership(engine, self_id, members, auto_remerge=True):
    proc = SimProcess(engine, self_id)
    proc.start()
    sent = []
    m = Membership(
        engine=engine,
        self_id=self_id,
        all_ids=["n0", "n1", "n2", "n3"],
        process=proc,
        send_datagram=lambda to, msg: sent.append((to, msg.msg_type)),
        use_heartbeats=False,
        heartbeat_interval=5.0,
        heartbeat_threshold=3,
        join_retry_interval=2.0,
        join_max_retries=3,
        on_exclude=lambda p, w: None,
        on_include=lambda p: None,
        on_joined=lambda ms: None,
        on_join_gave_up=lambda: None,
        connect_to=lambda p, cb: cb(True),
        annotate=lambda l, d: None,
        auto_remerge=auto_remerge,
    )
    m._incarnation = proc.incarnation
    m.members = list(members)
    m._sent = sent
    return m


def test_smaller_partition_yields():
    e = Engine()
    m = make_membership(e, "n2", ["n2"])
    m._handle_remerge_info(["n0", "n1", "n3"])
    assert not m.process.alive
    assert m.remerges == 1


def test_larger_partition_stands():
    e = Engine()
    m = make_membership(e, "n0", ["n0", "n1", "n3"])
    m._handle_remerge_info(["n2"])
    assert m.process.alive
    assert m.remerges == 0


def test_tie_breaks_on_minimum_id():
    e = Engine()
    # Equal sizes: the partition whose min id is larger yields.
    loser = make_membership(e, "n2", ["n2", "n3"])
    loser._handle_remerge_info(["n0", "n1"])
    assert not loser.process.alive

    winner = make_membership(e, "n0", ["n0", "n1"])
    winner._handle_remerge_info(["n2", "n3"])
    assert winner.process.alive


def test_overlapping_views_never_trigger():
    """Stale probe data naming one of our own members must be ignored."""
    e = Engine()
    m = make_membership(e, "n0", ["n0", "n1"])
    m._handle_remerge_info(["n1", "n2", "n3"])
    assert m.process.alive


def test_disabled_extension_never_yields():
    e = Engine()
    m = make_membership(e, "n2", ["n2"], auto_remerge=False)
    m._handle_remerge_info(["n0", "n1", "n3"])
    assert m.process.alive


def test_probe_answered_only_for_excluded_nodes():
    e = Engine()
    m = make_membership(e, "n0", ["n0", "n1"])
    m._handle_remerge_probe("n2")  # excluded: gets an info reply
    assert ("n2", "remerge-info") in m._sent
    del m._sent[:]
    m._handle_remerge_probe("n1")  # current member: no reply
    assert m._sent == []
