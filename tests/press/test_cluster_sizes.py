"""The cluster generalizes beyond the paper's fixed 4 nodes."""

import pytest

from repro.faults.spec import FaultKind, FaultSpec
from repro.press.cluster import SMOKE_SCALE, PressCluster
from repro.press.config import TCP_PRESS, VIA_PRESS_5


@pytest.mark.parametrize("n_nodes", [3, 4, 6])
def test_fault_free_operation_at_any_size(n_nodes):
    # Small clusters cover less of the working set, so their *disks*
    # bind before their CPUs; drive them gently below that knee.  (Two
    # nodes cannot hold this working set healthily at all — see
    # test_two_node_cluster_is_disk_bound.)
    cluster = PressCluster(
        VIA_PRESS_5, n_nodes=n_nodes, scale=SMOKE_SCALE, seed=2,
        utilization=0.6,
    )
    cluster.start()
    cluster.run_until(60.0)
    offered = cluster.workload.total_rate * cluster.scale.report_factor
    assert cluster.measured_rate(15.0, 60.0) == pytest.approx(offered, rel=0.15)
    # Sub-4-node clusters pay disk for the uncovered tail of the working
    # set; a few slow requests time out even in steady state.
    assert cluster.monitor.availability() > 0.93
    for server in cluster.servers.values():
        assert len(server.members) == n_nodes


def test_capacity_grows_with_cluster_size():
    peaks = {}
    for n in (2, 6):
        cluster = PressCluster(
            TCP_PRESS, n_nodes=n, scale=SMOKE_SCALE, seed=2, utilization=1.05
        )
        cluster.start()
        cluster.run_until(70.0)
        peaks[n] = cluster.measured_rate(25.0, 70.0)
    assert peaks[6] > peaks[2] * 1.8


def test_crash_detection_and_rejoin_in_a_six_node_cluster():
    cluster = PressCluster(VIA_PRESS_5, n_nodes=6, scale=SMOKE_SCALE, seed=2)
    cluster.start()
    cluster.mendosus.schedule(
        FaultSpec(FaultKind.NODE_CRASH, target="node3", at=30.0)
    )
    cluster.run_until(200.0)
    for server in cluster.servers.values():
        assert len(server.members) == 6
    assert not cluster.is_partitioned()


def test_two_node_cluster_is_disk_bound():
    """With half the cooperative cache gone, misses saturate the disks
    long before the CPUs — capacity is not simply proportional to n."""
    cluster = PressCluster(
        VIA_PRESS_5, n_nodes=2, scale=SMOKE_SCALE, seed=2, utilization=0.6
    )
    cluster.start()
    cluster.run_until(60.0)
    offered = cluster.workload.total_rate * cluster.scale.report_factor
    delivered = cluster.measured_rate(15.0, 60.0)
    assert delivered < offered * 0.9  # CPU estimate overshoots
    for server in cluster.servers.values():
        assert server.cache.hit_ratio() < 0.85  # the coverage deficit


@pytest.mark.parametrize("n_nodes", [16, 64])
def test_large_cluster_smoke(n_nodes):
    """Cluster scale is a first-class axis: membership, broadcast, and
    request forwarding must hold up at 16 and 64 nodes, not just the
    paper's 4.  (Kept short: the point is every path works at scale,
    not steady-state statistics.)"""
    cluster = PressCluster(
        VIA_PRESS_5, n_nodes=n_nodes, scale=SMOKE_SCALE, seed=2,
        utilization=0.5,
    )
    cluster.start()
    cluster.run_until(25.0)
    # Every server converged on the full membership (the join/broadcast
    # paths are O(n) and must still agree).
    for server in cluster.servers.values():
        assert len(server.members) == n_nodes
    assert not cluster.is_partitioned()
    # Requests flow, and the cooperative forwarding actually spans the
    # cluster (remote serves prove inter-node request traffic).
    assert cluster.snapshot_serves() > 0
    assert sum(s.remote_serves for s in cluster.servers.values()) > 0
    assert cluster.monitor.availability() > 0.9


def test_sixteen_node_crash_detection_and_rejoin():
    """Failure detection/exclusion/rejoin at a scale where the excluded
    node is a small fraction of the ring."""
    cluster = PressCluster(
        VIA_PRESS_5, n_nodes=16, scale=SMOKE_SCALE, seed=2, utilization=0.5
    )
    cluster.start()
    cluster.mendosus.schedule(
        FaultSpec(FaultKind.NODE_CRASH, target="node11", at=30.0)
    )
    cluster.run_until(200.0)
    for server in cluster.servers.values():
        assert len(server.members) == 16
    assert not cluster.is_partitioned()


def test_two_node_cluster_splinter_and_reset():
    cluster = PressCluster(VIA_PRESS_5, n_nodes=2, scale=SMOKE_SCALE, seed=2)
    cluster.start()
    cluster.mendosus.schedule(
        FaultSpec(FaultKind.LINK_DOWN, target="node1", at=30.0, duration=20.0)
    )
    cluster.run_until(120.0)
    assert cluster.is_partitioned()
    cluster.operator_reset()
    cluster.run_until(180.0)
    assert not cluster.is_partitioned()
