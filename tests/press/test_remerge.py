"""Tests for the automatic partition re-merge extension."""

import dataclasses

import pytest

from repro.faults.spec import FaultKind, FaultSpec
from repro.press.cluster import SMOKE_SCALE, PressCluster
from repro.press.config import TCP_PRESS_HB, VIA_PRESS_5

FULL = ["node0", "node1", "node2", "node3"]


def make(config, **kw):
    c = PressCluster(config, scale=SMOKE_SCALE, seed=17, **kw)
    c.start()
    return c


def remerge_config(base):
    return dataclasses.replace(
        base, auto_remerge=True, remerge_probe_interval=10.0
    )


def test_stock_press_stays_partitioned():
    c = make(VIA_PRESS_5)
    c.mendosus.schedule(
        FaultSpec(FaultKind.LINK_DOWN, target="node2", at=30.0, duration=30.0)
    )
    c.run_until(200.0)
    assert c.is_partitioned()


def test_remerge_heals_link_fault_splinter():
    c = make(remerge_config(VIA_PRESS_5))
    c.mendosus.schedule(
        FaultSpec(FaultKind.LINK_DOWN, target="node2", at=30.0, duration=30.0)
    )
    c.run_until(200.0)
    assert not c.is_partitioned()
    assert {n: sorted(s.members) for n, s in c.servers.items()} == {
        n: FULL for n in FULL
    }
    assert c.annotations.first("auto-remerge") is not None


def test_minority_side_yields():
    """The singleton restarts; the 3-node partition keeps its processes."""
    c = make(remerge_config(VIA_PRESS_5))
    c.mendosus.schedule(
        FaultSpec(FaultKind.LINK_DOWN, target="node2", at=30.0, duration=30.0)
    )
    c.run_until(200.0)
    assert c.nodes["node2"].process.incarnation >= 2
    for nid in ("node0", "node1", "node3"):
        assert c.nodes[nid].process.incarnation == 1


def test_remerge_heals_hb_hang_splinter():
    c = make(remerge_config(TCP_PRESS_HB))
    c.mendosus.schedule(
        FaultSpec(FaultKind.APP_HANG, target="node2", at=30.0, duration=40.0)
    )
    c.run_until(250.0)
    assert not c.is_partitioned()


def test_remerge_heals_stranded_rejoin():
    """The Figure-3 stranded TCP-PRESS singleton folds back in."""
    from repro.press.config import TCP_PRESS

    c = make(remerge_config(TCP_PRESS))
    c.mendosus.schedule(FaultSpec(FaultKind.NODE_CRASH, target="node2", at=30.0))
    c.run_until(350.0)
    assert not c.is_partitioned()


def test_no_probes_while_whole():
    c = make(remerge_config(VIA_PRESS_5))
    c.run_until(120.0)
    assert all(s.membership.remerges == 0 for s in c.servers.values())
    assert all(n.process.incarnation == 1 for n in c.nodes.values())
