"""Tests for the HTTP front end: accept, refuse, backlog shedding."""

import pytest

from repro.net.fabric import Fabric
from repro.net.packet import Frame
from repro.osim.node import Node
from repro.press.http import HttpPort, HttpRequest
from repro.sim.engine import Engine


def build(accept_backlog=128, parse_cost=0.01):
    e = Engine()
    fabric = Fabric(e)
    node = Node(e, "s0", fabric.attach("s0"))
    node.process.start()
    client_nic = fabric.attach("c0")
    got = {"resp": [], "reject": []}
    client_nic.register("http-resp", lambda f: got["resp"].append(f.payload))
    client_nic.register("http-reject", lambda f: got["reject"].append(f.payload))
    handled = []
    port = HttpPort(e, node, parse_cost, handled.append,
                    accept_backlog=accept_backlog)
    return e, node, client_nic, port, handled, got


def send_req(e, client_nic, file_id="f1"):
    req = HttpRequest.fresh("c0", file_id, e.now)
    client_nic.send(
        Frame(src="c0", dst="s0", size=300, kind="http-req", payload=req)
    )
    return req


def test_request_parsed_then_handled():
    e, node, client, port, handled, got = build()
    req = send_req(e, client)
    e.run(until=1.0)
    assert [r.req_id for r in handled] == [req.req_id]
    assert port.accepted == 1


def test_dead_process_refuses_immediately():
    e, node, client, port, handled, got = build()
    node.process.exit("crash")
    req = send_req(e, client)
    e.run(until=1.0)
    assert handled == []
    assert got["reject"] == [req.req_id]
    assert port.refused == 1


def test_hung_process_accepts_but_does_not_serve():
    e, node, client, port, handled, got = build()
    node.process.sigstop()
    send_req(e, client)
    e.run(until=1.0)
    assert handled == []
    assert got["reject"] == []
    node.process.sigcont()
    e.run(until=2.0)
    assert len(handled) == 1


def test_backlog_overflow_sheds_load():
    e, node, client, port, handled, got = build(accept_backlog=3, parse_cost=10.0)
    for _ in range(8):
        send_req(e, client)
    e.run(until=1.0)
    assert port.refused >= 4
    assert len(got["reject"]) == port.refused


def test_send_response_reaches_client():
    e, node, client, port, handled, got = build()
    req = send_req(e, client)
    e.run(until=1.0)
    port.send_response(req, 1024)
    e.run(until=2.0)
    assert got["resp"] == [req.req_id]


def test_request_ids_monotone():
    a = HttpRequest.fresh("c", "f", 0.0)
    b = HttpRequest.fresh("c", "f", 0.0)
    assert b.req_id > a.req_id
