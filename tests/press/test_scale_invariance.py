"""Scale-invariance: the ExperimentScale knob must not change physics.

The whole experimental programme leans on one claim: running with
``cpu_factor=f`` only derates the event rate — reported throughputs,
stall-onset times, and detection behaviour match the full-scale system.
These tests compare two different scale factors directly.
"""

import pytest

from repro.faults.spec import FaultKind, FaultSpec
from repro.press.cluster import ExperimentScale, PressCluster
from repro.press.config import TCP_PRESS, VIA_PRESS_5

COARSE = ExperimentScale(cpu_factor=200.0)
FINE = ExperimentScale(cpu_factor=50.0)


def peak(config, scale, seed=5):
    cluster = PressCluster(config, scale=scale, seed=seed, utilization=1.05)
    cluster.start()
    cluster.run_until(90.0)
    return cluster.measured_rate(30.0, 90.0)


@pytest.mark.parametrize("config", [TCP_PRESS, VIA_PRESS_5],
                         ids=lambda c: c.name)
def test_reported_peak_invariant_across_scales(config):
    coarse = peak(config, COARSE)
    fine = peak(config, FINE)
    assert coarse == pytest.approx(fine, rel=0.06)


def stall_onset(scale, seed=5):
    """Seconds from link-fault injection until throughput < 10% of normal."""
    cluster = PressCluster(TCP_PRESS, scale=scale, seed=seed)
    cluster.start()
    cluster.mendosus.schedule(
        FaultSpec(FaultKind.LINK_DOWN, target="node2", at=30.0, duration=60.0)
    )
    cluster.run_until(90.0)
    normal = cluster.measured_rate(10.0, 30.0)
    t = 30.0
    while t < 90.0:
        if cluster.measured_rate(t, t + 5.0) < normal * 0.1:
            return t - 30.0
        t += 1.0
    return float("inf")


def test_stall_onset_time_is_scale_invariant():
    """Buffer-fill time (reservoir / byte-rate) must match across scales
    to within the floor distortion documented in DESIGN.md."""
    coarse = stall_onset(COARSE)
    fine = stall_onset(FINE)
    assert coarse != float("inf") and fine != float("inf")
    assert abs(coarse - fine) <= 15.0


def test_detection_timings_scale_invariant():
    """Heartbeat detection is wall-clock (15s) at any scale."""
    from repro.press.config import TCP_PRESS_HB

    for scale in (COARSE, FINE):
        cluster = PressCluster(TCP_PRESS_HB, scale=scale, seed=5)
        cluster.start()
        cluster.mendosus.schedule(
            FaultSpec(FaultKind.LINK_DOWN, target="node2", at=30.0, duration=40.0)
        )
        cluster.run_until(60.0)
        detections = [
            t for t in cluster.annotations.times("reconfigured") if t >= 30.0
        ]
        assert detections, scale
        assert 10.0 <= detections[0] - 30.0 <= 25.0, scale


def test_cache_coverage_ratio_preserved():
    """cache:working-set ratio (hence hit ratios) is scale-invariant."""
    ratios = []
    for scale in (COARSE, FINE):
        cluster = PressCluster(VIA_PRESS_5, scale=scale, seed=5)
        per_node_files = cluster.config.cache_bytes // cluster.fileset.file_bytes
        cluster_files = per_node_files * len(cluster.node_ids)
        ratios.append(cluster_files / cluster.fileset.n_files)
    assert ratios[0] == pytest.approx(ratios[1], rel=0.1)
