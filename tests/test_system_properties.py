"""System-level property tests: invariants that must survive ANY fault.

These drive whole clusters through randomized fault sequences and check
conservation/consistency properties — the closest thing a simulation has
to chaos engineering.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.spec import FaultKind, FaultSpec
from repro.press.cluster import SMOKE_SCALE, PressCluster
from repro.press.config import TCP_PRESS, TCP_PRESS_HB, VIA_PRESS_5

INJECTABLE = [
    FaultKind.LINK_DOWN,
    FaultKind.NODE_CRASH,
    FaultKind.NODE_FREEZE,
    FaultKind.KERNEL_MEMORY,
    FaultKind.MEMORY_PINNING,
    FaultKind.APP_CRASH,
    FaultKind.APP_HANG,
    FaultKind.BAD_PARAM_NULL,
    FaultKind.BAD_PARAM_OFFSET,
    FaultKind.BAD_PARAM_SIZE,
]

fault_events = st.lists(
    st.tuples(
        st.sampled_from(INJECTABLE),
        st.integers(min_value=0, max_value=3),  # target node index
        st.floats(min_value=10.0, max_value=60.0),  # injection time
        st.floats(min_value=5.0, max_value=25.0),  # duration
    ),
    min_size=0,
    max_size=3,
)


def run_with_faults(config, events, seed, until=120.0):
    cluster = PressCluster(config, scale=SMOKE_SCALE, seed=seed)
    cluster.start()
    for kind, node_idx, at, duration in events:
        cluster.mendosus.schedule(
            FaultSpec(
                kind=kind,
                target=f"node{node_idx}",
                at=at,
                duration=duration,
            )
        )
    cluster.run_until(until)
    return cluster


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=fault_events, seed=st.integers(min_value=0, max_value=50))
def test_request_conservation_under_arbitrary_faults(events, seed):
    """Every issued request ends exactly one way: success, failure, or
    still pending — no request is ever double-counted or lost."""
    cluster = run_with_faults(VIA_PRESS_5, events, seed)
    issued = sum(
        c.completed + len(c._pending) for c in cluster.workload.clients
    ) + cluster.monitor.total_failed
    accounted = (
        cluster.monitor.total_ok
        + cluster.monitor.total_failed
        + sum(len(c._pending) for c in cluster.workload.clients)
    )
    assert cluster.monitor.total_ok == sum(
        c.completed for c in cluster.workload.clients
    )
    assert issued == accounted


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=fault_events, seed=st.integers(min_value=0, max_value=50))
def test_membership_views_stay_consistent(events, seed):
    """No running server ever lists a node the node registry doesn't
    know, never duplicates a member, and always lists itself."""
    cluster = run_with_faults(TCP_PRESS_HB, events, seed)
    for node_id, server in cluster.servers.items():
        if not cluster.nodes[node_id].process.running:
            continue
        members = server.members
        assert len(members) == len(set(members)), members
        assert node_id in members
        assert set(members) <= set(cluster.node_ids)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=fault_events, seed=st.integers(min_value=0, max_value=50))
def test_pinned_memory_never_exceeds_limit(events, seed):
    """Across any fault sequence, pinned bytes respect the kernel cap
    and cache accounting stays exact."""
    cluster = run_with_faults(VIA_PRESS_5, events, seed)
    for node_id, node in cluster.nodes.items():
        assert 0 <= node.pinnable.pinned <= node.pinnable.limit
        server = cluster.servers[node_id]
        if node.process.running and server.cache is not None:
            assert server.cache.used_bytes <= server.cache.capacity_bytes


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=fault_events, seed=st.integers(min_value=0, max_value=50))
def test_simulation_always_makes_progress(events, seed):
    """No fault sequence deadlocks the virtual clock, and after the
    faults clear plus slack, running servers serve again."""
    cluster = run_with_faults(TCP_PRESS, events, seed, until=100.0)
    before = cluster.monitor.total
    cluster.run_until(220.0)
    # Clients keep issuing; SOMETHING must resolve (even as failures).
    assert cluster.monitor.total > before
