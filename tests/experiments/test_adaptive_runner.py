"""Adaptive replication through the campaign runner.

Three contracts:

* determinism — an adaptive policy with ``max == min == 3`` is
  byte-identical to the legacy fixed-3 campaign (payload fingerprints
  and traces), and serial == parallel == warm-start-off under every
  policy;
* the acceptance experiment — on the demo grid the CI-half-width policy
  reaches the fixed-10 AT/AA/P point estimates within its own reported
  CI bands while spending ≥30% fewer replications (and, because cells
  are keyed by ``sim_key()``, re-uses the fixed campaign's cells
  outright);
* the budget allocator and the ``campaign.reps.*`` counters.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.faultload import MONTH, FaultLoad
from repro.core.metric import performability_of
from repro.core.model import evaluate
from repro.experiments.performability import banded_evaluation, _usable_load
from repro.experiments.repeaters import (
    REASON_BUDGET,
    REASON_CONVERGED,
    REASON_FIXED,
    REASON_MAX_REPS,
)
from repro.experiments.runner import CampaignRunner, run_campaign
from repro.experiments.settings import Phase1Settings, RepetitionPolicy
from repro.experiments.store import DiskStore, MemoryStore, payload_fingerprint
from repro.faults.spec import FaultKind

#: Tiny but real grid: every cell simulates in tens of milliseconds.
TINY = Phase1Settings(
    seed=11,
    warm=5.0,
    fault_at=10.0,
    fault_duration=8.0,
    post_recovery=10.0,
    tail=5.0,
    replications=3,
)
FAULTS = (FaultKind.NODE_CRASH, FaultKind.APP_CRASH)
VERSIONS = ["TCP-PRESS"]


def _fingerprints(store: MemoryStore) -> dict:
    return {
        (k.version, k.fault, k.seed): payload_fingerprint(p)
        for k, p in store._cells.items()
    }


# ----------------------------------------------------------------------
# Byte-identity: adaptive(min==max==3) == legacy fixed-3
# ----------------------------------------------------------------------


def test_adaptive_fixed3_is_byte_identical_to_legacy_fixed3():
    legacy_store, adaptive_store = MemoryStore(), MemoryStore()
    legacy_sets, legacy_rep = run_campaign(
        TINY, VERSIONS, FAULTS, store=legacy_store
    )
    pinned = dataclasses.replace(
        TINY,
        repetition=RepetitionPolicy(rule="fixed", min_reps=3, max_reps=3),
    )
    adaptive_sets, adaptive_rep = run_campaign(
        pinned, VERSIONS, FAULTS, store=adaptive_store
    )
    # Identical cells, byte for byte (volatile keys excluded).
    assert _fingerprints(legacy_store) == _fingerprints(adaptive_store)
    # Identical merged outputs and grid shape.
    for v in VERSIONS:
        assert legacy_sets[v].to_dict() == adaptive_sets[v].to_dict()
    assert len(legacy_rep.cells) == len(adaptive_rep.cells)
    assert legacy_rep.policy == adaptive_rep.policy == "fixed"
    assert all(r.reps == 3 for r in adaptive_rep.repetition)
    assert all(r.reason == REASON_FIXED for r in adaptive_rep.repetition)


def test_adaptive_fixed3_traces_match_legacy(tmp_path):
    legacy_dir, adaptive_dir = tmp_path / "legacy", tmp_path / "adaptive"
    run_campaign(
        TINY,
        VERSIONS,
        (FaultKind.APP_CRASH,),
        trace_dir=str(legacy_dir),
        trace_format="jsonl",
    )
    pinned = dataclasses.replace(
        TINY,
        repetition=RepetitionPolicy(rule="fixed", min_reps=3, max_reps=3),
    )
    run_campaign(
        pinned,
        VERSIONS,
        (FaultKind.APP_CRASH,),
        trace_dir=str(adaptive_dir),
        trace_format="jsonl",
    )
    legacy = {p.name: p.read_text() for p in legacy_dir.iterdir()}
    adaptive = {p.name: p.read_text() for p in adaptive_dir.iterdir()}
    assert legacy == adaptive


# ----------------------------------------------------------------------
# Serial == parallel == no-warm-start, per policy
# ----------------------------------------------------------------------

POLICIES = [
    None,  # legacy fixed-replications
    RepetitionPolicy(rule="rse", min_reps=2, max_reps=4, rse_target=0.05),
    RepetitionPolicy(
        rule="ci", min_reps=2, max_reps=4, ci_rel_half_width=0.08
    ),
]


@pytest.mark.parametrize(
    "policy", POLICIES, ids=["fixed", "rse", "ci"]
)
def test_serial_parallel_warmstart_agree(policy):
    # TINY's warm boundary (warm + fault_at = 15s) deliberately lands
    # inside the observatory's 20s SLO calibration window.  Restoring a
    # checkpoint used to diverge when the restoring process's global id
    # counters (request/message ids) collided with ids still live in the
    # restored state — the position-dependent pool-worker bug fixed by
    # snapshotting `repro.sim.ids` state in the warm blob.
    settings = dataclasses.replace(TINY, replications=2, repetition=policy)
    results = []
    for kwargs in (
        {"jobs": 1},
        {"jobs": 2},
        {"jobs": 1, "warm_start": False},
    ):
        store = MemoryStore()
        sets, report = run_campaign(
            settings, VERSIONS, (FaultKind.APP_CRASH,), store=store, **kwargs
        )
        results.append(
            (
                _fingerprints(store),
                {v: s.to_dict() for v, s in sets.items()},
                [(r.label, r.reps, r.reason) for r in report.repetition],
            )
        )
    assert results[0] == results[1] == results[2]


# ----------------------------------------------------------------------
# Acceptance: CI policy vs fixed-10 on the demo grid
# ----------------------------------------------------------------------


def test_ci_policy_matches_fixed10_within_bands_and_saves_reps(tmp_path):
    demo = dataclasses.replace(TINY, seed=7, replications=10)
    versions = ["TCP-PRESS", "VIA-PRESS-0"]
    store = DiskStore(tmp_path)
    fixed_sets, fixed_rep = run_campaign(demo, versions, FAULTS, store=store)
    assert fixed_rep.reps_spent == 10 * len(fixed_rep.repetition)

    adaptive = dataclasses.replace(
        demo,
        repetition=RepetitionPolicy(
            rule="ci", min_reps=3, max_reps=10, ci_rel_half_width=0.05
        ),
    )
    ci_sets, ci_rep = run_campaign(adaptive, versions, FAULTS, store=store)

    # ≥30% fewer replications than the fixed-10 ceiling.
    assert ci_rep.reps_saved_fraction >= 0.30
    # Cells are keyed by sim_key(), so the adaptive pass re-used the
    # fixed campaign's cells instead of re-simulating a single one.
    assert ci_rep.executed == 0
    assert ci_rep.policy == "ci"
    assert any("saved" in n for n in ci_rep.notices)

    # Same AT/AA/P point estimates within the reported CI bands.
    load = FaultLoad.table3(app_fault_mttf=MONTH)
    for v in versions:
        bands = banded_evaluation(
            ci_sets[v], ci_rep.replicates[v], _usable_load(load, ci_sets[v])
        )
        ref = evaluate(fixed_sets[v], _usable_load(load, fixed_sets[v]))
        fixed_points = {
            "AA": ref.availability,
            "AT": ref.average_throughput,
            "P": performability_of(ref),
        }
        for metric, band in bands.items():
            assert band.n >= 2
            assert band.covers(fixed_points[metric]), (
                f"{v} {metric}: fixed-10 {fixed_points[metric]} outside "
                f"[{band.lo}, {band.hi}]"
            )


def test_adaptive_campaign_is_itself_deterministic(tmp_path):
    """Two runs of one adaptive campaign agree on reps, reasons, and
    cell content — the contract the CI stats-smoke job re-checks."""
    adaptive = dataclasses.replace(
        TINY,
        repetition=RepetitionPolicy(
            rule="rse", min_reps=2, max_reps=5, rse_target=0.03
        ),
    )
    outcomes = []
    for d in ("a", "b"):
        store = DiskStore(tmp_path / d)
        _, report = run_campaign(
            adaptive, VERSIONS, FAULTS, store=store
        )
        outcomes.append(
            (
                [(r.label, r.reps, r.reason) for r in report.repetition],
                {
                    k: payload_fingerprint(p)
                    for k, p in (
                        ((kk["version"], kk["fault"], kk["seed"]), pp)
                        for kk, pp in store.iter_cells()
                    )
                },
            )
        )
    assert outcomes[0] == outcomes[1]


# ----------------------------------------------------------------------
# Budget allocation through the runner
# ----------------------------------------------------------------------


def _runner(settings, **kwargs) -> CampaignRunner:
    return CampaignRunner(settings, store=MemoryStore(), **kwargs)


def test_zero_budget_pins_every_stream_to_min_reps():
    settings = dataclasses.replace(
        TINY,
        repetition=RepetitionPolicy(
            rule="ci",
            min_reps=2,
            max_reps=6,
            ci_rel_half_width=1e-9,  # unreachable: every stream asks on
            rep_budget=0,
        ),
    )
    runner = _runner(settings)
    _, report = runner.run(VERSIONS, FAULTS)
    assert all(r.reps == 2 for r in report.repetition)
    assert all(r.reason == REASON_BUDGET for r in report.repetition)
    assert "budget exhausted" in " ".join(report.notices)
    streams = len(report.repetition)
    assert runner.metrics.counter("campaign.reps.scheduled").value == (
        2 * streams
    )
    assert (
        runner.metrics.counter("campaign.reps.budget_exhausted").value
        == streams
    )
    # Unspent ceiling shows up as skipped reps.
    assert runner.metrics.counter("campaign.reps.skipped").value == (
        4 * streams
    )


def test_small_budget_feeds_highest_dispersion_stream_first():
    settings = dataclasses.replace(
        TINY,
        repetition=RepetitionPolicy(
            rule="ci",
            min_reps=2,
            max_reps=3,
            ci_rel_half_width=1e-9,
            rep_budget=1,
        ),
    )
    runner = _runner(settings)
    _, report = runner.run(VERSIONS, FAULTS)
    by_label = {r.label: r for r in report.repetition}
    extended = [r for r in report.repetition if r.reps == 3]
    assert len(extended) == 1
    # The extra rep went to the stream whose mean was least pinned down.
    decisions = {
        r.label: max(
            r.rse,
            r.ci_half_width / abs(r.mean) if r.mean else float("inf"),
        )
        for r in report.repetition
    }
    # All other streams stopped on the empty budget.
    denied = [r for r in report.repetition if r.reason == REASON_BUDGET]
    assert len(denied) == len(report.repetition) - 1
    assert by_label[extended[0].label].reason in (
        REASON_MAX_REPS,
        REASON_BUDGET,
        REASON_CONVERGED,
    )
    assert runner.metrics.counter("campaign.reps.scheduled").value == (
        2 * len(report.repetition) + 1
    )


def test_counters_stay_zero_for_fixed_policy_extras():
    runner = _runner(dataclasses.replace(TINY, replications=2))
    _, report = runner.run(VERSIONS, (FaultKind.APP_CRASH,))
    assert runner.metrics.counter("campaign.reps.scheduled").value == 4
    assert runner.metrics.counter("campaign.reps.skipped").value == 0
    assert (
        runner.metrics.counter("campaign.reps.budget_exhausted").value == 0
    )
    assert report.reps_spent == 4
    assert report.reps_saved_fraction == 0.0


# ----------------------------------------------------------------------
# Fix: replications accepted 0/negative silently (boundary validation)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("bad", [0, -1, -100])
def test_replications_zero_or_negative_raises(bad):
    with pytest.raises(ValueError, match="replications must be a positive"):
        Phase1Settings(replications=bad)


def test_replications_non_integer_raises():
    with pytest.raises(ValueError, match="replications must be a positive"):
        Phase1Settings(replications=2.5)


def test_replications_one_is_the_boundary():
    settings = Phase1Settings(replications=1)
    policy = settings.repetition_policy()
    assert (policy.min_reps, policy.max_reps, policy.rule) == (1, 1, "fixed")


def test_repetition_policy_validation_messages():
    with pytest.raises(ValueError, match="min_reps must be a positive"):
        RepetitionPolicy(rule="rse", min_reps=0, max_reps=5)
    with pytest.raises(ValueError, match="max_reps must be an integer"):
        RepetitionPolicy(rule="ci", min_reps=4, max_reps=2)
    with pytest.raises(ValueError, match="repetition rule"):
        RepetitionPolicy(rule="bogus")
    with pytest.raises(ValueError, match="rep_budget"):
        RepetitionPolicy(rule="rse", rep_budget=-1)
