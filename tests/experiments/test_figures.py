"""Tests asserting the reproduced *shapes* of every table and figure.

Each test encodes the claim the paper draws from that exhibit; together
they are the acceptance suite of the reproduction.
"""

import pytest

from repro.core.faultload import DAY, MONTH, WEEK, FaultLoad
from repro.core.metric import performability_of
from repro.core.model import evaluate
from repro.core.sensitivity import crossover_multiplier
from repro.experiments.performability import CROSSOVER_KINDS
from repro.experiments.settings import CAMPAIGN_FAULTS
from repro.experiments.table1 import format_table1, run_table1
from repro.press.config import PAPER_TABLE1_THROUGHPUT


@pytest.fixture(scope="module")
def loads():
    return {
        "1/day": FaultLoad.table3(app_fault_mttf=DAY),
        "1/month": FaultLoad.table3(app_fault_mttf=MONTH),
    }


class TestTable1:
    def test_ratios_match_paper(self, fast_settings):
        rows = run_table1(fast_settings)
        measured = {r.version: r.measured for r in rows}
        paper = PAPER_TABLE1_THROUGHPUT
        for version in measured:
            ratio_measured = measured[version] / measured["TCP-PRESS"]
            ratio_paper = paper[version] / paper["TCP-PRESS"]
            assert ratio_measured == pytest.approx(ratio_paper, rel=0.08), version

    def test_absolute_throughputs_within_10pct(self, fast_settings):
        for row in run_table1(fast_settings):
            assert row.measured == pytest.approx(row.paper, rel=0.10), row.version

    def test_format_is_printable(self, fast_settings):
        text = format_table1(run_table1(fast_settings))
        assert "VIA-PRESS-5" in text and "paper" in text


class TestFigure6:
    def test_campaign_covers_all_faults(self, mini_campaign):
        for version, profiles in mini_campaign.items():
            assert len(profiles) == len(CAMPAIGN_FAULTS), version

    def test_availability_uniformly_terrible(self, mini_campaign, loads):
        """The paper's blunt conclusion: ~99% at 1/day, below 99.9% even
        at 1/month."""
        for profiles in mini_campaign.values():
            day = evaluate(profiles, loads["1/day"]).availability
            month = evaluate(profiles, loads["1/month"]).availability
            assert 0.98 < day < 0.999
            assert day < month < 0.9995

    def test_via_beats_tcp_press_availability(self, mini_campaign, loads):
        """The headline surprise: under the same fault load the VIA
        server's availability is better than plain TCP's."""
        for label in loads:
            tcp = evaluate(mini_campaign["TCP-PRESS"], loads[label])
            via = evaluate(mini_campaign["VIA-PRESS-5"], loads[label])
            assert via.availability > tcp.availability, label

    def test_performability_tracks_performance(self, mini_campaign, loads):
        """Availabilities are close, so the fastest version wins P."""
        p = {
            v: performability_of(evaluate(ps, loads["1/month"]))
            for v, ps in mini_campaign.items()
        }
        assert p["VIA-PRESS-5"] > p["TCP-PRESS-HB"] > p["TCP-PRESS"]

    def test_application_faults_dominate_at_high_rates(
        self, mini_campaign, loads
    ):
        result = evaluate(mini_campaign["TCP-PRESS"], loads["1/day"])
        app = {
            "application-crash",
            "application-hang",
            "bad-param-null-pointer",
            "bad-param-off-by-n-pointer",
            "bad-param-off-by-n-size",
        }
        app_share = sum(
            c.unavailability for c in result.contributions if c.name in app
        )
        assert app_share > result.unavailability * 0.5

    def test_via_immune_to_resource_exhaustion(self, mini_campaign, loads):
        result = evaluate(mini_campaign["VIA-PRESS-5"], loads["1/month"])
        kernel = result.contribution_by("kernel-memory-allocation")
        assert kernel == 0.0
        tcp = evaluate(mini_campaign["TCP-PRESS"], loads["1/month"])
        assert tcp.contribution_by("kernel-memory-allocation") > 0.0


class TestSensitivity:
    def test_figure7_crossover_near_one_per_week(self, mini_campaign):
        """TCP wins when VIA drops packets >1/week, loses when <1/week."""
        from repro.core.faultload import packet_drop_component

        base = FaultLoad.table3(app_fault_mttf=WEEK)
        p_tcp = performability_of(
            evaluate(mini_campaign["TCP-PRESS-HB"], base)
        )
        via = mini_campaign["VIA-PRESS-5"]
        p_day = performability_of(
            evaluate(via, base.with_extra(packet_drop_component(DAY)))
        )
        p_month = performability_of(
            evaluate(via, base.with_extra(packet_drop_component(MONTH)))
        )
        assert p_day < p_tcp < p_month

    def test_figure9_system_bugs_sink_via(self, mini_campaign):
        from repro.core.faultload import system_bug_component

        base = FaultLoad.table3(app_fault_mttf=WEEK)
        via = mini_campaign["VIA-PRESS-5"]
        p_base = performability_of(evaluate(via, base))
        p_weekly = performability_of(
            evaluate(via, base.with_extra(system_bug_component(WEEK)))
        )
        assert p_weekly < p_base * 0.5

    def test_figure10_combined_load_hands_win_to_tcp(self, mini_campaign):
        from repro.core.faultload import (
            packet_drop_component,
            software_bug_component,
            system_bug_component,
        )
        from repro.experiments.performability import (
            SENSITIVITY_BASE_APP_MTTF,
        )

        base = FaultLoad.table3(app_fault_mttf=SENSITIVITY_BASE_APP_MTTF)
        pessimistic = base.with_extra(
            packet_drop_component(MONTH),
            software_bug_component(2 * WEEK),
            system_bug_component(MONTH),
        )
        p_tcp_hb = performability_of(
            evaluate(mini_campaign["TCP-PRESS-HB"], base)
        )
        p_via = performability_of(
            evaluate(mini_campaign["VIA-PRESS-5"], pessimistic)
        )
        assert p_via < p_tcp_hb

    def test_crossover_is_roughly_four_x(self, mini_campaign):
        """§9: VIA faults must occur at ~4x the TCP rate to equalize."""
        base = FaultLoad.table3(app_fault_mttf=WEEK)
        m = crossover_multiplier(
            mini_campaign["TCP-PRESS"],
            mini_campaign["VIA-PRESS-5"],
            base,
            lambda mult: base.scaled(mult, CROSSOVER_KINDS),
        )
        assert 2.0 <= m <= 10.0
