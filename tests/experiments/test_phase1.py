"""Tests for the phase-1 runner: records, annotations, stage extraction."""

import pytest

from repro.core.extract import extract_profile
from repro.core.stages import Stage
from repro.experiments.phase1 import run_baseline, run_by_name, run_single_fault
from repro.experiments.settings import FAULT_MTTR
from repro.faults.spec import FaultKind
from repro.press.config import ALL_VERSIONS


def test_baseline_measures_near_offered_load(fast_settings):
    tn, cluster = run_baseline(ALL_VERSIONS["TCP-PRESS"], fast_settings)
    offered = cluster.workload.total_rate * cluster.scale.report_factor
    assert tn == pytest.approx(offered, rel=0.12)


def test_record_brackets_fault_window(fast_settings):
    record, _ = run_by_name("VIA-PRESS-5", FaultKind.LINK_DOWN, fast_settings)
    assert record.injected_at == pytest.approx(fast_settings.fault_at)
    assert record.cleared_at == pytest.approx(
        fast_settings.fault_at + fast_settings.fault_duration
    )
    assert record.end_time > record.cleared_at


def test_via_link_fault_detected_immediately(fast_settings):
    record, _ = run_by_name("VIA-PRESS-5", FaultKind.LINK_DOWN, fast_settings)
    assert record.detection_at is not None
    assert record.detection_at - record.injected_at < 2.0
    assert not record.recovered_fully  # splintered, no re-merge
    assert record.reset_at is not None  # the runner simulated the operator


def test_tcp_link_fault_never_detected(fast_settings):
    record, _ = run_by_name("TCP-PRESS", FaultKind.LINK_DOWN, fast_settings)
    assert record.detection_at is None
    assert record.recovered_fully


def test_heartbeat_detection_latency(fast_settings):
    record, _ = run_by_name("TCP-PRESS-HB", FaultKind.LINK_DOWN, fast_settings)
    assert record.detection_at is not None
    assert 10.0 <= record.detection_at - record.injected_at <= 25.0


def test_node_crash_record_includes_rejoin(fast_settings):
    record, _ = run_by_name("VIA-PRESS-5", FaultKind.NODE_CRASH, fast_settings)
    assert record.rejoined_at is not None
    assert record.recovered_fully


def test_extracted_profile_consistent_with_record(fast_settings):
    record, _ = run_by_name("TCP-PRESS", FaultKind.KERNEL_MEMORY, fast_settings)
    profile = extract_profile(
        record, mttr=FAULT_MTTR[FaultKind.KERNEL_MEMORY]
    )
    # Undetected stall: all of MTTR in stage A at heavy degradation.
    assert profile.duration(Stage.A) == pytest.approx(180.0)
    assert profile.throughput(Stage.A) < record.normal_throughput * 0.5


def test_via_kernel_memory_extracts_no_impact(fast_settings):
    record, _ = run_by_name("VIA-PRESS-0", FaultKind.KERNEL_MEMORY, fast_settings)
    profile = extract_profile(
        record, mttr=FAULT_MTTR[FaultKind.KERNEL_MEMORY]
    )
    assert profile.total_duration == 0.0  # pre-allocation immunity


def test_timeline_in_paper_units(fast_settings):
    record, cluster = run_by_name("TCP-PRESS", FaultKind.APP_CRASH, fast_settings)
    peak = max(rate for _t, rate in record.timeline.series)
    # Paper-unit rates are in the thousands of req/s, not the scaled tens.
    assert peak > 1000.0
