"""Tests for the model-validation experiments (extension)."""

import dataclasses

import pytest

from repro.core.faultload import DAY, FaultLoad
from repro.experiments.validation import (
    SEQUENTIAL_ROSTER,
    ValidationResult,
    run_monte_carlo,
    run_sequential_validation,
)
from repro.faults.spec import FaultKind


@pytest.fixture(scope="module")
def settings(request):
    from .conftest import FAST_SETTINGS

    return dataclasses.replace(
        FAST_SETTINGS, utilization=0.72, replications=1
    )


def test_result_error_metrics():
    r = ValidationResult(
        version="V",
        simulated_availability=0.95,
        predicted_availability=0.90,
        faults_injected=3,
        horizon=1000.0,
    )
    assert r.absolute_error == pytest.approx(0.05)
    assert r.relative_error == pytest.approx(0.5)


def test_sequential_validation_tcp(settings):
    r = run_sequential_validation("TCP-PRESS", settings, spacing=500.0)
    assert r.faults_injected == len(SEQUENTIAL_ROSTER)
    assert 0.0 < r.simulated_availability < 1.0
    assert 0.0 < r.predicted_availability < 1.0
    # The additive model holds to well under one predicted-unavailability.
    assert r.relative_error < 0.8


def test_sequential_roster_avoids_operator_stages():
    """The validation roster must contain no splinter-prone faults."""
    assert FaultKind.LINK_DOWN not in SEQUENTIAL_ROSTER
    assert FaultKind.SWITCH_DOWN not in SEQUENTIAL_ROSTER
    assert FaultKind.NODE_CRASH not in SEQUENTIAL_ROSTER


def test_monte_carlo_reasonable(settings):
    r = run_monte_carlo(
        "VIA-PRESS-5",
        FaultLoad.table3(app_fault_mttf=DAY),
        horizon=2000.0,
        acceleration=60.0,
        settings=settings,
    )
    assert r.faults_injected >= 1
    sim_u = 1 - r.simulated_availability
    pred_u = 1 - r.predicted_availability
    assert pred_u / 4 < sim_u < pred_u * 4
