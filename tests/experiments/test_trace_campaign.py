"""Campaign-level tracing and run telemetry.

A traced campaign emits one trace file per cell, records per-cell
telemetry into the store payloads (schema v2), bypasses the cache so
every traced cell actually executes, and surfaces store notices on the
report.
"""

from repro.analysis.report import trace_summary_report
from repro.experiments.runner import run_campaign
from repro.experiments.settings import Phase1Settings
from repro.experiments.store import SCHEMA_VERSION, CellKey, DiskStore
from repro.faults.spec import FaultKind
from repro.obs.exporters import validate_trace_dir
from repro.press.cluster import SMOKE_SCALE

FAST = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=1234,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=1,
)

VERSIONS = ["TCP-PRESS"]
FAULTS = [FaultKind.LINK_DOWN]


def _run(**kwargs):
    return run_campaign(FAST, versions=VERSIONS, faults=FAULTS, **kwargs)


def test_traced_campaign_emits_one_trace_per_cell(tmp_path):
    _sets, report = _run(trace_dir=str(tmp_path), trace_format="both")
    # 1 baseline + 1 fault cell, two files each.
    counts = validate_trace_dir(tmp_path)
    assert set(counts) == {
        "TCP-PRESS__baseline__rep0.jsonl",
        "TCP-PRESS__baseline__rep0.trace.json",
        "TCP-PRESS__link-down__rep0.jsonl",
        "TCP-PRESS__link-down__rep0.trace.json",
    }
    assert all(n > 0 for n in counts.values())
    assert len(report.cells) == 2


def test_jsonl_only_format(tmp_path):
    _run(trace_dir=str(tmp_path), trace_format="jsonl")
    names = {p.name for p in tmp_path.iterdir()}
    assert names == {
        "TCP-PRESS__baseline__rep0.jsonl",
        "TCP-PRESS__link-down__rep0.jsonl",
    }


def test_every_executed_cell_records_telemetry():
    _sets, report = _run()
    assert len(report.cells) == 2
    for cell in report.cells:
        assert cell.telemetry is not None
        assert cell.telemetry["event_total"] == sum(
            cell.telemetry["events"].values()
        )
        assert "metrics" in cell.telemetry
    totals = report.event_totals()
    assert totals.get("fault.injector.injected") == 1
    assert totals.get("press.cache.hit", 0) > 0


def test_cached_cells_keep_their_stored_telemetry(tmp_path):
    store = DiskStore(tmp_path)
    _run(store=store)
    _sets, rerun = _run(store=store)
    assert all(c.cached for c in rerun.cells)
    assert all(c.telemetry is not None for c in rerun.cells)


def test_tracing_bypasses_the_cache(tmp_path):
    store = DiskStore(tmp_path / "cache")
    _run(store=store)  # warm
    _sets, traced = _run(store=store, trace_dir=str(tmp_path / "traces"))
    assert all(not c.cached for c in traced.cells)
    validate_trace_dir(tmp_path / "traces")


def test_traced_results_still_persist_for_warm_replay(tmp_path):
    """Tracing forces execution but not amnesia: the traced cells land in
    the store, so the next un-traced campaign replays entirely warm and
    agrees bit-for-bit."""
    store = DiskStore(tmp_path / "cache")
    traced_sets, traced = _run(
        store=store, trace_dir=str(tmp_path / "traces"), trace_format="jsonl"
    )
    assert all(not c.cached for c in traced.cells)
    assert len(store) == len(traced.cells)
    warm_sets, warm = _run(store=store)
    assert all(c.cached for c in warm.cells)
    assert warm.executed == 0
    assert warm_sets["TCP-PRESS"].to_dict() == traced_sets["TCP-PRESS"].to_dict()


def test_schema_notice_reaches_the_report(tmp_path):
    from repro.experiments.runner import cell_seed

    store = DiskStore(tmp_path)
    # Simulate a cache written before the telemetry bump: one baseline
    # cell stored under schema v1 at the exact key the campaign will ask
    # for.
    key = CellKey(
        version="TCP-PRESS",
        settings_key=FAST.sim_key(),
        fault=None,
        seed=cell_seed(
            FAST.seed, "TCP-PRESS", 0, warm=FAST.warm, fault_at=FAST.fault_at
        ),
        schema=1,
    )
    store.put(key, {"kind": "baseline", "tn": 1.0, "elapsed": 0.0})
    _sets, report = _run(store=store)
    assert any(
        f"schema v1→v{SCHEMA_VERSION}" in n for n in report.notices
    )
    assert trace_summary_report(report).startswith("note: cache invalidated")
    # A second campaign hits the refreshed cache: no new notices.
    _sets, again = _run(store=store)
    assert again.notices == []


def test_trace_summary_report_renders_totals():
    _sets, report = _run()
    text = trace_summary_report(report)
    assert "run telemetry:" in text
    assert "press.cache.hit" in text
