"""Shared fixtures: compressed phase-1 settings and a cached mini-campaign."""

from __future__ import annotations

import pytest

from repro.experiments.settings import Phase1Settings
from repro.press.cluster import SMOKE_SCALE

#: Short windows: enough to observe detection, recovery, and resets,
#: small enough for CI.
FAST_SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=5,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=2,
)


@pytest.fixture(scope="session")
def fast_settings() -> Phase1Settings:
    return FAST_SETTINGS


@pytest.fixture(scope="session")
def mini_campaign(fast_settings):
    """Profile sets for one TCP and one VIA version (cached per session)."""
    from repro.experiments.campaign import full_campaign

    return full_campaign(
        fast_settings, versions=["TCP-PRESS", "TCP-PRESS-HB", "VIA-PRESS-5"]
    )
