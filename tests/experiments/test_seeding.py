"""Regression tests for per-cell seed derivation.

The historical scheme ``settings.seed + 101 * rep`` collides across
nearby base seeds: seed=1/rep=1 lands on 102, the same universe as
base seed 102's rep 0, silently correlating campaigns that should be
independent.  The stable-hash derivation must keep every cell of the
campaign grid on its own seed — for one base seed and across them.
"""

import pytest

from repro.experiments.runner import cell_seed
from repro.experiments.settings import CAMPAIGN_FAULTS
from repro.press.config import ALL_VERSIONS

FAULTS = [None] + [k.value for k in CAMPAIGN_FAULTS]  # None = baseline
VERSIONS = list(ALL_VERSIONS)
REPS = range(5)


def _grid_seeds(base_seed):
    return {
        (v, f, r): cell_seed(base_seed, v, f, r)
        for v in VERSIONS
        for f in FAULTS
        for r in REPS
    }


def test_old_scheme_collides_across_base_seeds():
    """Documents the bug the hash derivation fixes."""
    assert 1 + 101 * 1 == 102 + 101 * 0


def test_distinct_cells_never_share_a_seed_within_a_campaign():
    for base in (0, 1, 7, 1234):
        seeds = _grid_seeds(base)
        assert len(set(seeds.values())) == len(seeds), f"collision at base={base}"


def test_no_collisions_across_nearby_base_seeds():
    """The exact failure mode of the linear scheme: consecutive base
    seeds (a seed sweep) must produce fully disjoint cell seeds."""
    all_seeds = {}
    for base in range(0, 32):
        for key, seed in _grid_seeds(base).items():
            assert seed not in all_seeds, (
                f"base={base} cell={key} reuses the seed of "
                f"{all_seeds[seed]}"
            )
            all_seeds[seed] = (base, key)


def test_derivation_is_deterministic():
    assert cell_seed(7, "TCP-PRESS", "link-down", 2) == cell_seed(
        7, "TCP-PRESS", "link-down", 2
    )


def test_derivation_is_stable_across_releases():
    """Pinned literal: an accidental change to the hash recipe would
    silently invalidate every persisted store and every golden result."""
    assert cell_seed(7, "TCP-PRESS", "link-down", 0) == 1409172571414270150
    assert cell_seed(7, "TCP-PRESS", None, 0) == 10543370139897681553


def test_every_component_matters():
    base = cell_seed(7, "TCP-PRESS", "link-down", 1)
    assert cell_seed(8, "TCP-PRESS", "link-down", 1) != base
    assert cell_seed(7, "VIA-PRESS-5", "link-down", 1) != base
    assert cell_seed(7, "TCP-PRESS", "node-crash", 1) != base
    assert cell_seed(7, "TCP-PRESS", None, 1) != base
    assert cell_seed(7, "TCP-PRESS", "link-down", 0) != base


def test_seeds_fit_in_64_bits():
    for seed in _grid_seeds(7).values():
        assert 0 <= seed < 2**64
