"""Regression tests for per-cell seed derivation.

Seeds are derived per *warm group* — one (base seed, version,
replication) under one warm-segment layout.  The fault kind is
deliberately **not** part of the derivation: the baseline and every
fault cell of a group share a seed, which makes their pre-injection
trajectories identical (the warm-start checkpoint cache depends on it,
and the extraction thresholds get a Tn correlated with the run they
judge).  Everything else must keep distinct groups on distinct seeds —
the historical ``settings.seed + 101 * rep`` arithmetic collides across
nearby base seeds: seed=1/rep=1 lands on 102, the same universe as base
seed 102's rep 0, silently correlating campaigns that should be
independent.
"""

import pytest

from repro.experiments.runner import CampaignRunner, cell_seed
from repro.experiments.settings import CAMPAIGN_FAULTS, Phase1Settings
from repro.press.cluster import SMOKE_SCALE
from repro.press.config import ALL_VERSIONS

VERSIONS = list(ALL_VERSIONS)
REPS = range(5)
LAYOUT = {"warm": 60.0, "fault_at": 180.0}


def _grid_seeds(base_seed, **layout):
    layout = layout or LAYOUT
    return {
        (v, r): cell_seed(base_seed, v, r, **layout)
        for v in VERSIONS
        for r in REPS
    }


def test_old_scheme_collides_across_base_seeds():
    """Documents the bug the hash derivation fixes."""
    assert 1 + 101 * 1 == 102 + 101 * 0


def test_distinct_groups_never_share_a_seed_within_a_campaign():
    for base in (0, 1, 7, 1234):
        seeds = _grid_seeds(base)
        assert len(set(seeds.values())) == len(seeds), f"collision at base={base}"


def test_no_collisions_across_nearby_base_seeds():
    """The exact failure mode of the linear scheme: consecutive base
    seeds (a seed sweep) must produce fully disjoint group seeds."""
    all_seeds = {}
    for base in range(0, 32):
        for key, seed in _grid_seeds(base).items():
            assert seed not in all_seeds, (
                f"base={base} group={key} reuses the seed of "
                f"{all_seeds[seed]}"
            )
            all_seeds[seed] = (base, key)


def test_derivation_is_deterministic():
    assert cell_seed(7, "TCP-PRESS", 2, **LAYOUT) == cell_seed(
        7, "TCP-PRESS", 2, **LAYOUT
    )


def test_derivation_is_stable_across_releases():
    """Pinned literals: an accidental change to the hash recipe would
    silently invalidate every persisted store and every golden result."""
    assert cell_seed(7, "TCP-PRESS", 0, **LAYOUT) == 3965607772954969333
    assert cell_seed(7, "TCP-PRESS", 1, **LAYOUT) == 11593457414175075745
    assert (
        cell_seed(7, "TCP-PRESS", 0, warm=20.0, fault_at=60.0)
        == 15336483916775543171
    )


def test_every_component_matters():
    base = cell_seed(7, "TCP-PRESS", 1, **LAYOUT)
    assert cell_seed(8, "TCP-PRESS", 1, **LAYOUT) != base
    assert cell_seed(7, "VIA-PRESS-5", 1, **LAYOUT) != base
    assert cell_seed(7, "TCP-PRESS", 0, **LAYOUT) != base
    # The warm-segment layout is part of the derivation: campaigns that
    # move the injection instant or the warm window judge trajectories
    # under a different timeline and must not reuse seed universes.
    assert cell_seed(7, "TCP-PRESS", 1, warm=61.0, fault_at=180.0) != base
    assert cell_seed(7, "TCP-PRESS", 1, warm=60.0, fault_at=181.0) != base


def test_campaign_grid_shares_one_seed_per_group():
    """Baseline and every fault cell of a (version, rep) group run under
    one seed — the precondition for warm-start checkpoint sharing."""
    from repro.experiments.runner import _Cell

    settings = Phase1Settings(scale=SMOKE_SCALE, seed=7, replications=3)
    runner = CampaignRunner(settings)
    # The wave-0 grid exactly as CampaignRunner.run builds it: every
    # stream (baseline + each fault) at every replication index.
    grid = [
        _Cell(v, f, rep, runner._seed_for(v, rep))
        for v in ["TCP-PRESS", "VIA-PRESS-5"]
        for f in [None] + [k.value for k in CAMPAIGN_FAULTS]
        for rep in range(settings.replications)
    ]
    by_group = {}
    for cell in grid:
        by_group.setdefault((cell.version, cell.rep), set()).add(cell.seed)
    assert len(by_group) == 2 * 3
    assert all(len(seeds) == 1 for seeds in by_group.values())
    # ... and the groups are pairwise distinct.
    flat = [next(iter(s)) for s in by_group.values()]
    assert len(set(flat)) == len(flat)
    # The grid seed matches the public derivation at the settings layout.
    assert runner._seed_for("TCP-PRESS", 0) == cell_seed(
        7, "TCP-PRESS", 0, warm=settings.warm, fault_at=settings.fault_at
    )


def test_seeds_fit_in_64_bits():
    for seed in _grid_seeds(7).values():
        assert 0 <= seed < 2**64
