"""The campaign perf ledger and the perf-report / perf-compare views.

One small profiled campaign per module; assertions cover the per-cell
perf records (wall-clock breakdown + profiler digest), the consolidated
``BENCH_campaign.json`` ledger, the report's execute/warm-restore
split (``speedup`` vs ``parallelism``), and both CLI views.
"""

import json

import pytest

from repro.analysis.perf import (
    LEDGER_NAME,
    aggregate_perf,
    campaign_ledger,
    load_ledger,
    perf_compare,
    perf_report_from_store,
)
from repro.experiments.runner import run_campaign
from repro.experiments.settings import Phase1Settings
from repro.experiments.store import DiskStore, MemoryStore
from repro.faults.spec import FaultKind
from repro.press.cluster import SMOKE_SCALE

FAST = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=1234,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=1,
    shards=4,
)

VERSIONS = ["TCP-PRESS"]
FAULTS = [FaultKind.LINK_DOWN, FaultKind.NODE_CRASH]


@pytest.fixture(scope="module")
def profiled(tmp_path_factory):
    path = tmp_path_factory.mktemp("perf-store")
    sets, report = run_campaign(
        FAST,
        versions=VERSIONS,
        faults=FAULTS,
        store=DiskStore(path),
        profile=True,
    )
    return path, report


def test_every_executed_cell_gets_a_perf_record(profiled):
    path, report = profiled
    assert len(report.perf) == report.executed == len(report.cells)
    for row in report.perf:
        for key in (
            "version",
            "restore_s",
            "execute_s",
            "serialize_s",
            "snapshot_s",
            "warm_status",
            "profile",
        ):
            assert key in row, key
        digest = row["profile"]
        assert digest["events"] > 0
        assert digest["self_s"] > 0.0
        assert digest["layers"]
        assert digest["engine"]["events_processed"] > 0
        assert digest["lp"]["shards"] == 4


def test_report_splits_execute_from_warm_restore(profiled):
    _path, report = profiled
    assert report.restore_seconds >= 0.0
    assert report.execute_seconds > 0.0
    assert report.cell_seconds == pytest.approx(
        report.execute_seconds + report.restore_seconds
    )
    # Restore time is part of speedup's numerator but not parallelism's.
    assert report.parallelism <= report.speedup


def test_ledger_written_beside_the_store(profiled):
    path, report = profiled
    ledger = load_ledger(path)
    assert ledger is not None, f"{LEDGER_NAME} missing or unreadable"
    assert ledger["cells"]["profiled"] == len(report.perf)
    assert ledger["timing"]["execute_s"] == pytest.approx(
        report.execute_seconds
    )
    assert ledger["profile"]["layers"]
    assert ledger["profile"]["lp"]["shards"] == 4
    assert ledger["settings"]["shards"] == 4
    assert any("flight recorder" in n for n in report.notices)
    # JSON round-trips exactly (no non-serializable leftovers).
    json.loads((path / LEDGER_NAME).read_text())


def test_perf_records_round_trip_through_the_store(profiled):
    path, report = profiled
    store = DiskStore(path)
    rows = list(store.iter_perf())
    assert len(rows) == len(report.perf)
    for key, record in rows:
        assert key["version"] in VERSIONS
        assert "execute_s" in record and "profile" in record


def test_perf_report_prints_the_acceptance_surface(profiled):
    path, _report = profiled
    text = perf_report_from_store(path)
    assert "self-time by layer" in text
    assert "per-cell wall-clock breakdown" in text
    assert "lp shards: 4" in text
    assert "load imbalance" in text
    assert "TCP-PRESS/link-down" in text
    assert "fabric fastpath" in text


def test_perf_compare_of_a_store_with_itself_is_comparable(profiled):
    path, _report = profiled
    text, comparable = perf_compare(path, path)
    assert comparable
    assert "execute_s" in text
    assert "layer." in text


def test_perf_compare_flags_an_unprofiled_side(profiled, tmp_path):
    path, _report = profiled
    run_campaign(
        FAST, versions=VERSIONS, faults=FAULTS, store=DiskStore(tmp_path)
    )
    text, comparable = perf_compare(path, tmp_path)
    assert not comparable
    assert "no flight-recorder data" in text


def test_memory_store_campaign_still_reports_perf():
    """No cache dir: records ride the report, a notice says where."""
    _sets, report = run_campaign(
        FAST,
        versions=VERSIONS,
        faults=[FaultKind.LINK_DOWN],
        store=MemoryStore(),
        profile=True,
    )
    assert report.perf
    assert any("flight recorder" in n for n in report.notices)
    ledger = campaign_ledger(report, settings=FAST)
    assert ledger["cells"]["profiled"] == len(report.perf)


def test_unprofiled_report_builds_an_empty_ledger():
    _sets, report = run_campaign(
        FAST, versions=VERSIONS, faults=[FaultKind.LINK_DOWN]
    )
    assert report.perf == []
    ledger = campaign_ledger(report)
    assert ledger["cells"]["profiled"] == 0
    assert ledger["profile"]["layers"] == {}


def test_aggregate_perf_tolerates_partial_records():
    """Stale/truncated perf rows degrade to zeros, never KeyError."""
    agg = aggregate_perf(
        [
            {},
            {"execute_s": 1.0},
            {"profile": {"layers": {"net": {"events": 3, "self_s": 0.5}}}},
            {"profile": {"lp": {"shards": 2, "lp_events": [4, 6]}}},
            "not-a-dict",
        ]
    )
    assert agg["totals"]["cells"] == 4
    assert agg["totals"]["execute_s"] == 1.0
    assert agg["layers"]["net"]["events"] == 3
    assert agg["lp"]["shards"] == 2
    assert agg["lp"]["imbalance"] == pytest.approx(1.2)
