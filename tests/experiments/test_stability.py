"""Tests for the seed-sweep stability utilities."""

import pytest

from repro.experiments.settings import DEFAULT_SETTINGS
from repro.experiments.stability import SweepStat, format_sweep, sweep


def test_sweepstat_aggregates():
    s = SweepStat("x")
    for v in (1.0, 2.0, 3.0):
        s.add(v)
    assert s.mean == pytest.approx(2.0)
    assert s.lo == 1.0 and s.hi == 3.0
    assert s.spread == pytest.approx(0.5)


def test_sweepstat_zero_mean_spread():
    s = SweepStat("x")
    s.add(0.0)
    assert s.spread == 0.0


def test_sweep_runs_quantity_per_seed():
    calls = []

    def quantity(settings):
        calls.append(settings.seed)
        return {"a": float(settings.seed), "b": 2.0 * settings.seed}

    stats = sweep(quantity, seeds=[1, 2, 3], settings=DEFAULT_SETTINGS)
    assert calls == [1, 2, 3]
    assert stats["a"].samples == [1.0, 2.0, 3.0]
    assert stats["b"].mean == pytest.approx(4.0)


def test_format_sweep():
    s = SweepStat("metric")
    s.add(1.0)
    s.add(2.0)
    out = format_sweep({"metric": s}, title="Title")
    assert "Title" in out
    assert "metric" in out and "±" in out
