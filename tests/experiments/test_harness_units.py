"""Unit tests for experiment-harness objects (no simulation needed)."""

import dataclasses

import pytest

from repro.core.extract import ExperimentRecord
from repro.core.stages import SevenStageProfile, Stage, average_profiles
from repro.experiments.settings import (
    CAMPAIGN_FAULTS,
    DEFAULT_SETTINGS,
    DURATION_FAULTS,
    FAULT_MTTR,
    Phase1Settings,
)
from repro.experiments.table1 import Table1Row, format_table1
from repro.experiments.timelines import TimelineFigure
from repro.faults.spec import FaultKind
from repro.sim.monitor import Timeline


class TestSettings:
    def test_campaign_covers_all_of_table2(self):
        assert set(CAMPAIGN_FAULTS) == set(FaultKind)

    def test_every_fault_has_an_mttr(self):
        assert set(FAULT_MTTR) == set(FaultKind)

    def test_duration_faults_are_the_extended_ones(self):
        assert FaultKind.APP_CRASH not in DURATION_FAULTS
        assert FaultKind.BAD_PARAM_NULL not in DURATION_FAULTS
        assert FaultKind.LINK_DOWN in DURATION_FAULTS
        assert FaultKind.APP_HANG in DURATION_FAULTS

    def test_cache_key_distinguishes_settings(self):
        a = DEFAULT_SETTINGS.cache_key()
        b = dataclasses.replace(DEFAULT_SETTINGS, seed=99).cache_key()
        c = dataclasses.replace(DEFAULT_SETTINGS, replications=1).cache_key()
        assert len({a, b, c}) == 3

    def test_cache_key_is_hashable(self):
        hash(DEFAULT_SETTINGS.cache_key())


class TestTable1Formatting:
    def test_ratios_relative_to_first_row(self):
        rows = [
            Table1Row("TCP-PRESS", measured=5000.0, paper=4965.0),
            Table1Row("VIA-PRESS-5", measured=7000.0, paper=7058.0),
        ]
        out = format_table1(rows)
        assert "1.40" in out  # 7000/5000
        assert "1.42" in out  # 7058/4965


class TestTimelineFigure:
    def _record(self):
        tl = Timeline(
            version="V",
            fault="f",
            bucket_width=1.0,
            series=[(float(t), 100.0 if t < 50 else 0.0) for t in range(100)],
        )
        return ExperimentRecord(
            version="V",
            fault="f",
            timeline=tl,
            normal_throughput=100.0,
            injected_at=50.0,
            cleared_at=80.0,
            end_time=100.0,
        )

    def test_series_coarsens_buckets(self):
        fig = TimelineFigure(fault=FaultKind.LINK_DOWN)
        fig.records["V"] = self._record()
        pts = fig.series("V", bucket=25.0)
        assert len(pts) == 4
        assert pts[0][1] == pytest.approx(100.0)
        assert pts[3][1] == pytest.approx(0.0)


class TestProfileAveraging:
    def test_average_of_identical_is_identity(self):
        p = SevenStageProfile.from_pairs(
            "f", "v", 100.0, [(Stage.A, 10.0, 50.0)]
        )
        avg = average_profiles([p, p, p])
        assert avg.duration(Stage.A) == pytest.approx(10.0)
        assert avg.throughput(Stage.A) == pytest.approx(50.0)

    def test_duration_weighted_throughput(self):
        a = SevenStageProfile.from_pairs("f", "v", 100.0, [(Stage.A, 10.0, 0.0)])
        b = SevenStageProfile.from_pairs("f", "v", 100.0, [(Stage.A, 30.0, 80.0)])
        avg = average_profiles([a, b])
        assert avg.duration(Stage.A) == pytest.approx(20.0)
        assert avg.throughput(Stage.A) == pytest.approx(60.0)  # 2400/40

    def test_no_impact_replication_dilutes_duration(self):
        hit = SevenStageProfile.from_pairs("f", "v", 100.0, [(Stage.A, 30.0, 10.0)])
        miss = SevenStageProfile.no_impact("f", "v", 100.0)
        avg = average_profiles([hit, miss])
        assert avg.duration(Stage.A) == pytest.approx(15.0)
        assert avg.throughput(Stage.A) == pytest.approx(10.0)

    def test_mismatched_experiments_rejected(self):
        a = SevenStageProfile.no_impact("f1", "v", 100.0)
        b = SevenStageProfile.no_impact("f2", "v", 100.0)
        with pytest.raises(ValueError):
            average_profiles([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_profiles([])

    def test_throughput_clamped_at_mean_tn(self):
        a = SevenStageProfile.from_pairs("f", "v", 90.0, [(Stage.A, 10.0, 90.0)])
        b = SevenStageProfile.from_pairs("f", "v", 110.0, [(Stage.A, 10.0, 110.0)])
        avg = average_profiles([a, b])
        assert avg.throughput(Stage.A) <= avg.normal_throughput
