"""Fast path vs. reference mode: bit-identical experiment results.

The event-reduction fast path (see ``repro.net.fabric``) must not change
a single simulated result — only how many heap events it takes to get
there.  These tests run full phase-1 fault cells twice, once with the
fast path and once in ``--no-fastpath`` reference mode, and diff the
complete timeline (throughput series, failure series, annotations,
availability) and every derived record field bit-for-bit.

The cells are chosen to cross the interesting machinery: a LAN link
fault on TCP exercises mid-flight materialization plus silent loss and
retransmission; an application crash on a SAN VIA version exercises the
synchronous error path, train submission fallback, and restart.
"""

import dataclasses

import pytest

from repro.experiments.phase1 import run_single_fault
from repro.experiments.settings import Phase1Settings
from repro.faults.spec import FaultKind
from repro.press.cluster import SMOKE_SCALE
from repro.press.config import ALL_VERSIONS_EXTENDED

CELLS = (
    ("TCP-PRESS", FaultKind.LINK_DOWN),
    ("VIA-PRESS-5", FaultKind.APP_CRASH),
)

SEEDS = (1234, 77)


def _settings(seed: int, fastpath: bool) -> Phase1Settings:
    return Phase1Settings(
        scale=SMOKE_SCALE,
        seed=seed,
        warm=15.0,
        fault_at=30.0,
        fault_duration=40.0,
        post_recovery=60.0,
        tail=40.0,
        replications=1,
        fastpath=fastpath,
    )


def _run(version: str, kind: FaultKind, seed: int, fastpath: bool):
    record, cluster = run_single_fault(
        ALL_VERSIONS_EXTENDED[version], kind, _settings(seed, fastpath)
    )
    return record, cluster


@pytest.mark.parametrize("version,kind", CELLS, ids=lambda v: str(getattr(v, "value", v)))
@pytest.mark.parametrize("seed", SEEDS)
def test_fault_cell_bit_identical(version, kind, seed):
    fast_record, fast_cluster = _run(version, kind, seed, fastpath=True)
    slow_record, slow_cluster = _run(version, kind, seed, fastpath=False)

    # The entire timeline, exact — no tolerances anywhere.
    assert dataclasses.asdict(fast_record.timeline) == dataclasses.asdict(
        slow_record.timeline
    )

    # Every derived scalar of the experiment record.
    for field in (
        "normal_throughput",
        "injected_at",
        "cleared_at",
        "end_time",
        "reset_at",
        "recovered_fully",
        "detection_at",
        "rejoined_at",
    ):
        assert getattr(fast_record, field) == getattr(slow_record, field), field

    # End-of-run network counters are part of the contract too.
    assert (
        fast_cluster.fabric.frames_delivered
        == slow_cluster.fabric.frames_delivered
    )
    assert fast_cluster.fabric.frames_lost == slow_cluster.fabric.frames_lost
    for name in fast_cluster.fabric.nics:
        f_nic = fast_cluster.fabric.nics[name]
        s_nic = slow_cluster.fabric.nics[name]
        assert f_nic.frames_sent == s_nic.frames_sent, name
        assert f_nic.frames_received == s_nic.frames_received, name

    # Sanity: the fast path actually engaged — same results from
    # meaningfully fewer heap events, otherwise this test proves nothing.
    assert (
        fast_cluster.engine.events_processed
        < slow_cluster.engine.events_processed
    )
