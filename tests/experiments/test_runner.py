"""Determinism, parallel-parity, and resumability of the campaign runner.

The contract under test: a campaign is a pure function of its settings.
Serial execution, a process pool, and a warm result store must all
produce the same ProfileSets — and the warm store must do it with zero
simulation runs.
"""

import dataclasses
import json

import pytest

from repro.experiments.runner import CampaignRunner, run_campaign
from repro.experiments.settings import Phase1Settings
from repro.experiments.store import DiskStore, MemoryStore
from repro.faults.spec import FaultKind
from repro.press.cluster import SMOKE_SCALE

#: Small grid: 1 version x 2 faults x 2 reps (+2 baselines) = 6 cells.
SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=11,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=2,
)
VERSIONS = ["TCP-PRESS"]
FAULTS = (FaultKind.APP_CRASH, FaultKind.LINK_DOWN)


def _run(**kwargs):
    kwargs.setdefault("versions", VERSIONS)
    kwargs.setdefault("faults", FAULTS)
    return run_campaign(SETTINGS, **kwargs)


@pytest.fixture(scope="module")
def serial():
    """One serial reference campaign, shared by the parity tests."""
    return _run(jobs=1, store=MemoryStore())


class TestDeterminism:
    def test_serial_repeat_is_bit_identical(self, serial):
        sets, _ = serial
        again, _ = _run(jobs=1, use_cache=False)
        assert again["TCP-PRESS"].to_dict() == sets["TCP-PRESS"].to_dict()

    def test_parallel_equals_serial(self, serial):
        sets, _ = serial
        par, report = _run(jobs=2, use_cache=False)
        assert report.jobs == 2
        assert par["TCP-PRESS"].to_dict() == sets["TCP-PRESS"].to_dict()
        assert sets["TCP-PRESS"].isclose(par["TCP-PRESS"])

    def test_full_campaign_facade_parallel_parity(self, serial):
        from repro.experiments.campaign import full_campaign

        sets, _ = serial
        par = full_campaign(
            SETTINGS,
            versions=VERSIONS,
            faults=FAULTS,
            jobs=2,
            store=MemoryStore(),
        )
        assert sets["TCP-PRESS"].isclose(par["TCP-PRESS"], rel_tol=1e-9)
        assert par["TCP-PRESS"].to_dict() == sets["TCP-PRESS"].to_dict()

    def test_store_round_trip_equals_serial(self, serial, tmp_path):
        """serialize -> load -> compare: the full persistence cycle."""
        sets, _ = serial
        store = DiskStore(tmp_path)
        cold, _ = _run(jobs=1, store=store)
        warm, _ = _run(jobs=1, store=store)
        for profiles in (cold["TCP-PRESS"], warm["TCP-PRESS"]):
            assert profiles.to_dict() == sets["TCP-PRESS"].to_dict()

    def test_profile_set_json_round_trip(self, serial):
        from repro.core.model import ProfileSet

        sets, _ = serial
        ps = sets["TCP-PRESS"]
        again = ProfileSet.from_dict(json.loads(json.dumps(ps.to_dict())))
        assert again.to_dict() == ps.to_dict()
        assert ps.isclose(again, rel_tol=0.0)


class TestStoreResumption:
    def test_warm_store_runs_zero_cells(self, tmp_path):
        store = DiskStore(tmp_path)
        _, cold = _run(store=store)
        assert cold.executed == len(cold.cells)
        _, warm = _run(store=store)
        assert warm.executed == 0
        assert warm.cached == len(cold.cells)

    def test_warm_store_survives_reopen(self, tmp_path):
        _run(store=DiskStore(tmp_path))
        _, warm = _run(store=DiskStore(tmp_path))
        assert warm.executed == 0

    def test_corrupted_cell_is_rerun_not_fatal(self, tmp_path):
        store = DiskStore(tmp_path)
        sets, cold = _run(store=store)
        # Corrupt exactly one cached cell file.
        victim = sorted(tmp_path.rglob("*.json"))[0]
        victim.write_text("truncated {")
        resumed, report = _run(store=DiskStore(tmp_path))
        assert report.executed == 1
        assert report.cached == len(cold.cells) - 1
        assert resumed["TCP-PRESS"].to_dict() == sets["TCP-PRESS"].to_dict()

    def test_settings_change_misses_the_store(self, tmp_path):
        store = DiskStore(tmp_path)
        _run(store=store)
        changed = dataclasses.replace(SETTINGS, utilization=0.8)
        _, report = run_campaign(
            changed, versions=VERSIONS, faults=FAULTS, store=store
        )
        assert report.executed == len(report.cells)

    def test_use_cache_false_bypasses_the_store(self, tmp_path):
        store = DiskStore(tmp_path)
        _run(store=store)
        _, report = _run(store=store, use_cache=False)
        assert report.executed == len(report.cells)
        # And it did not overwrite/duplicate anything either way.
        _, warm = _run(store=store)
        assert warm.executed == 0


class TestReport:
    def test_cells_cover_the_grid(self):
        _, report = _run(use_cache=False)
        reps = SETTINGS.replications
        assert len(report.cells) == reps * (len(FAULTS) + 1)
        baselines = [c for c in report.cells if c.fault is None]
        assert len(baselines) == reps
        assert report.executed + report.cached == len(report.cells)

    def test_elapsed_and_wall_clock_recorded(self):
        _, report = _run(use_cache=False)
        assert report.wall_clock > 0
        assert report.cell_seconds > 0
        assert all(c.elapsed > 0 for c in report.cells)
        assert report.by_version().keys() == {"TCP-PRESS"}
        assert set(report.by_fault()) == {
            "baseline",
            FaultKind.APP_CRASH.value,
            FaultKind.LINK_DOWN.value,
        }

    def test_cache_hits_report_zero_elapsed(self):
        store = MemoryStore()
        _run(store=store)
        _, warm = _run(store=store)
        assert warm.cell_seconds == 0.0
        assert all(c.cached for c in warm.cells)

    def test_on_cell_progress_callback(self):
        seen = []
        runner = CampaignRunner(
            SETTINGS, store=MemoryStore(), on_cell=seen.append
        )
        runner.run(VERSIONS, FAULTS)
        assert len(seen) == SETTINGS.replications * (len(FAULTS) + 1)

    def test_timing_report_renders(self):
        from repro.analysis.report import campaign_timing_report

        _, report = _run(use_cache=False)
        text = campaign_timing_report(report)
        assert "cells" in text and "wall-clock" in text
        assert "TCP-PRESS" in text


class TestCampaignFacade:
    def test_full_campaign_uses_configured_defaults(self, tmp_path):
        from repro.experiments import campaign as campaign_mod

        store = DiskStore(tmp_path)
        old_store, old_jobs = (
            campaign_mod._default_store,
            campaign_mod._default_jobs,
        )
        try:
            campaign_mod.configure(store=store, jobs=1)
            campaign_mod.full_campaign(
                SETTINGS, versions=VERSIONS, faults=FAULTS
            )
            assert len(store) > 0
            _, report = campaign_mod.full_campaign_with_report(
                SETTINGS, versions=VERSIONS, faults=FAULTS
            )
            assert report.executed == 0
        finally:
            campaign_mod.configure(store=old_store, jobs=old_jobs)

    def test_measure_profile_set_matches_runner(self, serial):
        from repro.experiments.campaign import measure_profile_set

        sets, _ = serial
        ps = measure_profile_set(
            "TCP-PRESS", SETTINGS, faults=FAULTS, store=MemoryStore()
        )
        assert ps.to_dict() == sets["TCP-PRESS"].to_dict()
