"""Statistical tests for the adaptive-replication stopping rules.

The rules are pure arithmetic over sample lists, so they can be driven
with synthetic distributions (constant, normal, heavy-tailed lognormal,
bimodal) far faster than with simulations.  Three families of claims:

* bounds — every rule terminates within ``max_reps`` and never stops
  below ``min_reps``, for arbitrary sample sequences (hypothesis);
* convergence — on concrete distributions the adaptive rules spend
  replications where the variance is, and the fixed rule ignores it;
* calibration — the Student-t arithmetic matches published critical
  values, and CI coverage across seeded trials lands near the nominal
  confidence level.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.repeaters import (
    REASON_BUDGET,
    REASON_CONVERGED,
    REASON_FIXED,
    REASON_MAX_REPS,
    CIHalfWidthRule,
    Decision,
    FixedCountRule,
    RelativeStandardErrorRule,
    RepBudget,
    ci_half_width,
    make_rule,
    relative_standard_error,
    run_rule,
    sample_stats,
    student_t_cdf,
    student_t_quantile,
)
from repro.experiments.settings import RepetitionPolicy

# ----------------------------------------------------------------------
# Synthetic sample sources (deterministic per seed)
# ----------------------------------------------------------------------


def constant(value: float = 5.0):
    return lambda i: value


def normal(seed: int, mean: float = 100.0, sd: float = 5.0):
    rng = random.Random(seed)
    return lambda i: rng.gauss(mean, sd)


def lognormal(seed: int, mu: float = 0.0, sigma: float = 1.5):
    """Heavy-tailed: occasional samples far above the median."""
    rng = random.Random(seed)
    return lambda i: rng.lognormvariate(mu, sigma)


def bimodal(seed: int, lo: float = 10.0, hi: float = 90.0):
    rng = random.Random(seed)
    return lambda i: (hi if rng.random() < 0.5 else lo) + rng.gauss(0, 1)


ADAPTIVE_RULES = [
    lambda: RelativeStandardErrorRule(target=0.05, min_reps=3, max_reps=10),
    lambda: CIHalfWidthRule(target=0.05, min_reps=3, max_reps=10),
]

DISTRIBUTIONS = [
    lambda seed: constant(),
    lambda seed: normal(seed),
    lambda seed: lognormal(seed),
    lambda seed: bimodal(seed),
]


# ----------------------------------------------------------------------
# Student-t arithmetic
# ----------------------------------------------------------------------

#: Published two-sided 95% critical values: t_{0.975, df}.
T_TABLE_975 = {1: 12.706, 2: 4.303, 5: 2.571, 10: 2.228, 30: 2.042}


@pytest.mark.parametrize("df,expected", sorted(T_TABLE_975.items()))
def test_t_quantile_matches_published_table(df, expected):
    assert student_t_quantile(0.975, df) == pytest.approx(expected, abs=5e-3)


def test_t_quantile_one_sided_value():
    # t_{0.95, 9} from any stats appendix.
    assert student_t_quantile(0.95, 9) == pytest.approx(1.833, abs=5e-3)


@pytest.mark.parametrize("df", [1, 2, 5, 30, 120])
def test_t_cdf_quantile_round_trip(df):
    for p in (0.6, 0.9, 0.975, 0.999):
        t = student_t_quantile(p, df)
        assert student_t_cdf(t, df) == pytest.approx(p, abs=1e-9)


def test_t_cdf_symmetry_and_median():
    assert student_t_cdf(0.0, 7) == pytest.approx(0.5)
    assert student_t_cdf(-2.0, 7) == pytest.approx(
        1.0 - student_t_cdf(2.0, 7), abs=1e-12
    )
    assert student_t_quantile(0.5, 7) == 0.0


def test_t_quantile_large_df_approaches_normal():
    assert student_t_quantile(0.975, 1000) == pytest.approx(1.96, abs=5e-3)


def test_t_domain_errors():
    with pytest.raises(ValueError):
        student_t_quantile(0.0, 5)
    with pytest.raises(ValueError):
        student_t_quantile(0.975, 0)
    with pytest.raises(ValueError):
        student_t_cdf(1.0, -1)


# ----------------------------------------------------------------------
# Sample statistics
# ----------------------------------------------------------------------


def test_sample_stats_and_edge_cases():
    mean, std = sample_stats([2.0, 4.0, 6.0])
    assert mean == pytest.approx(4.0)
    assert std == pytest.approx(2.0)
    assert sample_stats([7.0]) == (7.0, 0.0)
    with pytest.raises(ValueError):
        sample_stats([])


def test_rse_conventions():
    assert relative_standard_error([5.0, 5.0, 5.0]) == 0.0
    assert relative_standard_error([-1.0, 1.0]) == math.inf
    # RSE of the mean shrinks with n for a fixed spread.
    wide = relative_standard_error([90.0, 110.0])
    narrow = relative_standard_error([90.0, 110.0, 90.0, 110.0, 90.0, 110.0])
    assert narrow < wide


def test_ci_half_width_below_two_samples_is_zero():
    assert ci_half_width([], 0.95) == 0.0
    assert ci_half_width([3.0], 0.95) == 0.0


def test_ci_half_width_hand_computed():
    # n=4, s=2 -> hw = t_{0.975,3} * 2 / 2 = 3.182...
    xs = [8.0, 10.0, 12.0, 10.0]
    _, s = sample_stats(xs)
    expected = student_t_quantile(0.975, 3) * s / 2.0
    assert ci_half_width(xs, 0.95) == pytest.approx(expected, rel=1e-12)


# ----------------------------------------------------------------------
# Bounds: hypothesis over arbitrary sample sequences
# ----------------------------------------------------------------------

samples_strategy = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=30,
)


@given(samples_strategy, st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=10))
def test_rules_never_stop_below_min_reps(xs, min_reps, extra):
    max_reps = min_reps + extra
    for rule in (
        RelativeStandardErrorRule(0.05, min_reps, max_reps),
        CIHalfWidthRule(0.05, min_reps, max_reps),
        FixedCountRule(max_reps),
    ):
        decision = rule.decide(xs)
        if len(xs) < rule.min_reps:
            assert not decision.stop
            assert decision.reason == "below-min-reps"
        if len(xs) >= rule.max_reps:
            assert decision.stop


@given(st.integers(min_value=0, max_value=2 ** 31), st.integers(0, 3),
       st.integers(0, 1))
def test_rules_terminate_within_max_reps_on_any_distribution(
    seed, dist_idx, rule_idx
):
    rule = ADAPTIVE_RULES[rule_idx]()
    sampler = DISTRIBUTIONS[dist_idx](seed)
    samples, decision = run_rule(rule, sampler)
    assert rule.min_reps <= len(samples) <= rule.max_reps
    assert decision.stop
    assert decision.n == len(samples)
    assert decision.reason in (REASON_CONVERGED, REASON_MAX_REPS)


# ----------------------------------------------------------------------
# Convergence behaviour per distribution
# ----------------------------------------------------------------------


def test_constant_stream_stops_at_min_reps():
    for make in ADAPTIVE_RULES:
        rule = make()
        samples, decision = run_rule(rule, constant())
        assert len(samples) == rule.min_reps
        assert decision.reason == REASON_CONVERGED
        assert decision.rse == 0.0


def test_tight_normal_converges_early_loose_lognormal_does_not():
    """Adaptive reps go where the variance is."""
    normal_reps, lognormal_reps, hit_max = [], [], 0
    for seed in range(20):
        rule = CIHalfWidthRule(target=0.05, min_reps=3, max_reps=10)
        samples, _ = run_rule(rule, normal(seed, mean=100.0, sd=2.0))
        normal_reps.append(len(samples))
        rule = CIHalfWidthRule(target=0.05, min_reps=3, max_reps=10)
        samples, decision = run_rule(rule, lognormal(seed))
        lognormal_reps.append(len(samples))
        hit_max += decision.reason == REASON_MAX_REPS
    assert sum(normal_reps) < sum(lognormal_reps)
    # The heavy tail usually exhausts the ceiling — and is reported as
    # such instead of pretending to have converged.
    assert hit_max >= 10


def test_bimodal_needs_more_reps_than_unimodal_at_same_mean():
    uni, bi = [], []
    for seed in range(20):
        rule = RelativeStandardErrorRule(target=0.03, min_reps=3, max_reps=15)
        uni.append(len(run_rule(rule, normal(seed, mean=50.0, sd=3.0))[0]))
        rule = RelativeStandardErrorRule(target=0.03, min_reps=3, max_reps=15)
        bi.append(len(run_rule(rule, bimodal(seed))[0]))
    assert sum(uni) < sum(bi)


def test_fixed_rule_spends_exactly_count_everywhere():
    for dist in DISTRIBUTIONS:
        samples, decision = run_rule(FixedCountRule(4), dist(99))
        assert len(samples) == 4
        assert decision.reason == REASON_FIXED


# ----------------------------------------------------------------------
# Calibration: CI coverage across seeded trials
# ----------------------------------------------------------------------


def test_ci_coverage_near_nominal_on_normal_samples():
    """A 95% Student-t interval over n=5 normal draws should cover the
    true mean ~95% of the time; allow a generous tolerance band for 400
    trials (binomial sd ~1.1%)."""
    true_mean, covered, trials = 100.0, 0, 400
    for seed in range(trials):
        rng = random.Random(seed)
        xs = [rng.gauss(true_mean, 10.0) for _ in range(5)]
        mean, _ = sample_stats(xs)
        hw = ci_half_width(xs, 0.95)
        covered += mean - hw <= true_mean <= mean + hw
    assert 0.91 <= covered / trials <= 0.99


def test_rse_rule_stops_with_rse_at_or_below_target():
    for seed in range(30):
        rule = RelativeStandardErrorRule(target=0.05, min_reps=3, max_reps=40)
        samples, decision = run_rule(rule, normal(seed, mean=100.0, sd=15.0))
        if decision.reason == REASON_CONVERGED:
            assert relative_standard_error(samples) <= 0.05


def test_ci_rule_stops_with_relative_half_width_at_or_below_target():
    for seed in range(30):
        rule = CIHalfWidthRule(target=0.05, min_reps=3, max_reps=60)
        samples, decision = run_rule(rule, normal(seed, mean=100.0, sd=15.0))
        if decision.reason == REASON_CONVERGED:
            mean, _ = sample_stats(samples)
            assert ci_half_width(samples, 0.95) / abs(mean) <= 0.05


# ----------------------------------------------------------------------
# Validation and the budget allocator
# ----------------------------------------------------------------------


def test_rule_constructor_validation():
    with pytest.raises(ValueError, match="min_reps"):
        RelativeStandardErrorRule(0.05, min_reps=0, max_reps=5)
    with pytest.raises(ValueError, match="max_reps"):
        CIHalfWidthRule(0.05, min_reps=5, max_reps=4)
    with pytest.raises(ValueError, match="confidence"):
        FixedCountRule(3, confidence=1.0)
    with pytest.raises(ValueError, match="target"):
        RelativeStandardErrorRule(target=0.0)
    with pytest.raises(ValueError, match="target"):
        CIHalfWidthRule(target=-1.0)


def test_make_rule_maps_policies_to_rules():
    assert isinstance(
        make_rule(RepetitionPolicy(rule="fixed", min_reps=3, max_reps=3)),
        FixedCountRule,
    )
    rse = make_rule(
        RepetitionPolicy(rule="rse", min_reps=2, max_reps=7, rse_target=0.1)
    )
    assert isinstance(rse, RelativeStandardErrorRule)
    assert (rse.min_reps, rse.max_reps, rse.target) == (2, 7, 0.1)
    ci = make_rule(
        RepetitionPolicy(
            rule="ci", min_reps=3, max_reps=9, ci_rel_half_width=0.04
        )
    )
    assert isinstance(ci, CIHalfWidthRule)
    assert (ci.min_reps, ci.max_reps, ci.target) == (3, 9, 0.04)


def _decision(dispersion: float) -> Decision:
    # rel_half_width = half_width / |mean|; rse kept below it.
    return Decision(
        stop=False,
        reason="unconverged",
        n=3,
        mean=1.0,
        std=0.1,
        rse=0.0,
        half_width=dispersion,
    )


def test_budget_grants_highest_dispersion_first():
    budget = RepBudget(2)
    granted, denied = budget.allocate(
        [("a", _decision(0.1)), ("b", _decision(0.5)), ("c", _decision(0.3))]
    )
    assert granted == ["b", "c"]
    assert denied == ["a"]
    assert budget.spent == 2
    assert budget.remaining == 0
    assert budget.denied == 1


def test_budget_tie_breaks_by_label():
    budget = RepBudget(1)
    granted, denied = budget.allocate(
        [("z", _decision(0.2)), ("a", _decision(0.2))]
    )
    assert granted == ["a"]
    assert denied == ["z"]


def test_budget_none_is_unbounded():
    budget = RepBudget(None)
    granted, denied = budget.allocate(
        [(f"s{i}", _decision(0.1)) for i in range(50)]
    )
    assert len(granted) == 50 and not denied
    assert budget.remaining is None


def test_budget_zero_denies_everything():
    budget = RepBudget(0)
    granted, denied = budget.allocate([("a", _decision(0.4))])
    assert not granted and denied == ["a"]


def test_budget_rejects_negative():
    with pytest.raises(ValueError, match=">= 0"):
        RepBudget(-1)


def test_budget_reason_constant_is_stable():
    # Persisted in stores and asserted by CI; renaming it is a schema
    # change, not a refactor.
    assert REASON_BUDGET == "budget-exhausted"
