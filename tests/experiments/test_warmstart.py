"""Campaign warm-start checkpointing (repro.experiments.warmstart).

The contract under test: a warm-started campaign — warm segments
simulated once per (version, replication) group, sibling cells restored
from the checkpoint — produces **byte-identical** deterministic payloads
to a fully cold campaign, for every cell, including telemetry,
observatory digests and exported traces.  On top of that, checkpoint
traffic must be *visible*: hit/miss/invalidated counters, a report
notice, and loud recomputation when the on-disk format no longer
matches the interpreter.
"""

from __future__ import annotations

import pytest

from repro.experiments import warmstart
from repro.experiments.runner import CampaignRunner, run_campaign
from repro.experiments.settings import Phase1Settings
from repro.experiments.store import (
    DiskStore,
    MemoryStore,
    payload_fingerprint,
)
from repro.experiments.warmstart import (
    STATUS_COLD,
    STATUS_HIT,
    STATUS_INVALIDATED,
    STATUS_MISS,
    WarmSpec,
    WarmStartCache,
    warm_digest,
)
from repro.faults.spec import FaultKind
from repro.press.cluster import SMOKE_SCALE
from repro.sim import snapshot

SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=5,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=1,
)
VERSIONS = ["TCP-PRESS", "VIA-PRESS-5"]
FAULTS = [FaultKind.LINK_DOWN, FaultKind.NODE_CRASH]
N_GROUPS = len(VERSIONS) * SETTINGS.replications
N_CELLS = N_GROUPS * (1 + len(FAULTS))


@pytest.fixture(autouse=True)
def _fresh_memory_checkpoints():
    """Isolate the per-process in-memory checkpoint cache per test."""
    warmstart._memory_blobs.clear()
    yield
    warmstart._memory_blobs.clear()


class SpyStore(MemoryStore):
    """Memory store that remembers every payload it was handed."""

    def __init__(self):
        super().__init__()
        self.payloads = {}

    def put(self, key, payload):
        self.payloads[(key.version, key.fault, key.seed)] = payload
        super().put(key, payload)


def _run(store, **kwargs):
    return run_campaign(
        SETTINGS, versions=VERSIONS, faults=FAULTS, store=store, **kwargs
    )


def _disk_fingerprints(store: DiskStore):
    return {
        (k["version"], k["fault"], k["seed"]): payload_fingerprint(p)
        for k, p in store.iter_cells()
    }


@pytest.fixture(scope="module")
def cold_reference(tmp_path_factory):
    """Fingerprints and profile sets of a fully cold campaign."""
    store = DiskStore(tmp_path_factory.mktemp("cold-reference"))
    sets, report = run_campaign(
        SETTINGS,
        versions=VERSIONS,
        faults=FAULTS,
        store=store,
        warm_start=False,
    )
    assert report.warm_start == {}
    return _disk_fingerprints(store), {
        v: sets[v].to_dict() for v in VERSIONS
    }


# ----------------------------------------------------------------------
# Equivalence: warm == cold, byte for byte
# ----------------------------------------------------------------------


def test_warm_disk_campaign_matches_cold_byte_for_byte(
    cold_reference, tmp_path
):
    store = DiskStore(tmp_path)
    sets, report = _run(store)
    assert _disk_fingerprints(store) == cold_reference[0]
    assert {v: sets[v].to_dict() for v in VERSIONS} == cold_reference[1]
    # Every cell restored a checkpoint; every group was simulated once.
    assert report.warm_start == {"hit": N_CELLS, "miss": N_GROUPS}
    assert any(
        "warm-start:" in n and "PERFORMANCE.md" in n for n in report.notices
    )


def test_warm_memory_campaign_matches_cold(cold_reference):
    """The serial in-memory path (WarmSpec(dir=None)) agrees too."""
    store = SpyStore()
    _sets, report = _run(store)
    got = {
        key: payload_fingerprint(p) for key, p in store.payloads.items()
    }
    assert got == cold_reference[0]
    assert report.warm_start == {"hit": N_CELLS, "miss": N_GROUPS}
    assert len(warmstart._memory_blobs) == N_GROUPS


def test_traced_campaigns_export_identical_traces(cold_reference, tmp_path):
    """Warm-started cells replay the *recorded event stream* of a cold
    cell exactly — the exported trace files are byte-identical."""
    cold_dir, warm_dir = tmp_path / "cold", tmp_path / "warm"
    _run(
        MemoryStore(),
        warm_start=False,
        trace_dir=str(cold_dir),
        trace_format="jsonl",
    )
    _run(
        MemoryStore(),
        warm_start=True,
        trace_dir=str(warm_dir),
        trace_format="jsonl",
    )
    cold_files = {p.name: p.read_bytes() for p in cold_dir.iterdir()}
    warm_files = {p.name: p.read_bytes() for p in warm_dir.iterdir()}
    assert set(cold_files) == set(warm_files) and len(cold_files) == N_CELLS
    assert cold_files == warm_files


# ----------------------------------------------------------------------
# Checkpoint lifecycle: reuse, invalidation, opting out
# ----------------------------------------------------------------------


def test_checkpoints_survive_and_serve_later_campaigns(tmp_path):
    store = DiskStore(tmp_path)
    _run(store)
    first = _disk_fingerprints(store)
    store.clear()  # drop the cells; warmstart/*.ckpt files remain
    _sets, report = _run(store)
    # No warm segment re-simulated: every group's checkpoint was found.
    assert report.warm_start == {"hit": N_CELLS}
    assert _disk_fingerprints(store) == first


def test_invalidated_checkpoints_recompute_loudly(tmp_path):
    store = DiskStore(tmp_path)
    _run(store)
    first = _disk_fingerprints(store)
    ckpts = sorted((store.cache_dir / "warmstart").glob("*.ckpt"))
    assert len(ckpts) == N_GROUPS
    for path in ckpts:
        # Rewrite the header to what an older writer would have left.
        _header, _, blob = path.read_bytes().partition(b"\n")
        path.write_bytes(b"repro-warmstart format=0 python=0.0 marshal=0\n" + blob)
    store.clear()
    _sets, report = _run(store)
    assert report.warm_start == {
        "hit": N_CELLS,
        "invalidated": N_GROUPS,
    }
    assert any("invalidated checkpoint" in n for n in report.notices)
    # Recomputed checkpoints reproduce the original payloads exactly.
    assert _disk_fingerprints(store) == first


def test_no_warm_start_marks_every_cell_cold():
    store = SpyStore()
    _sets, report = _run(store, warm_start=False)
    assert report.warm_start == {}
    assert not any("warm-start" in n for n in report.notices)
    assert all(
        p["warm_start"]["status"] == STATUS_COLD
        for p in store.payloads.values()
    )


def test_store_cached_cells_never_touch_checkpoints(tmp_path):
    store = DiskStore(tmp_path)
    _run(store)
    _sets, report = _run(store)  # fully store-cached replay
    assert all(c.cached for c in report.cells)
    assert report.warm_start == {}
    assert all(c.warm is None for c in report.cells)


def test_runner_metrics_counters_mirror_the_report(tmp_path):
    runner = CampaignRunner(SETTINGS, store=DiskStore(tmp_path))
    _sets, report = runner.run(VERSIONS, FAULTS)
    assert runner.metrics.counter("campaign.warm_start.hit").value == N_CELLS
    assert runner.metrics.counter("campaign.warm_start.miss").value == N_GROUPS
    assert (
        runner.metrics.counter("campaign.warm_start.invalidated").value == 0
    )
    assert report.warm_start == {"hit": N_CELLS, "miss": N_GROUPS}
    executed = [c for c in report.cells if not c.cached]
    assert all(c.warm == STATUS_HIT for c in executed)


# ----------------------------------------------------------------------
# The cache itself
# ----------------------------------------------------------------------


def test_obtain_always_returns_fresh_objects(tmp_path):
    cache = WarmStartCache(WarmSpec(dir=str(tmp_path)))
    c1, o1, p1 = cache.obtain("TCP-PRESS", SETTINGS, False)
    c2, o2, p2 = cache.obtain("TCP-PRESS", SETTINGS, False)
    assert p1["status"] == STATUS_MISS
    assert p2["status"] == STATUS_HIT
    assert c1 is not c2 and o1 is not o2
    # ... but they are the *same* simulation state, bit for bit.
    assert snapshot.state_digest(c1) == snapshot.state_digest(c2)


def test_obtain_restores_global_id_counters(tmp_path):
    """Checkpoints carry the global id-counter positions (repro.sim.ids).

    Regression for the pool-worker divergence of ROADMAP item 3: a
    process restoring a warm checkpoint used to keep issuing request /
    message ids from wherever *its own* counters happened to sit.  When
    that position landed just below the captured in-flight id window,
    fresh ids collided with ids still pending in the restored state and
    the continuation diverged from cold.  ``obtain`` must therefore
    reposition every counter to the captured value, no matter where the
    restoring process left them.
    """
    from repro.sim import ids

    cache = WarmStartCache(WarmSpec(dir=str(tmp_path)))
    c1, o1, _ = cache.obtain("TCP-PRESS", SETTINGS, False)
    captured = ids.global_id_state()
    # Park every counter in the collision zone a dirty pool worker would
    # occupy: just below the ids embedded in the checkpointed state.
    for name, value in captured.items():
        ids._sources[name].jump(max(1, value - 1))
    c2, o2, _ = cache.obtain("TCP-PRESS", SETTINGS, False)
    assert ids.global_id_state() == captured
    assert snapshot.state_digest(c1) == snapshot.state_digest(c2)
    # The observatory is Snapshottable too: calibration state captured
    # mid-window survives the round trip bit for bit.
    assert snapshot.state_digest(o1) == snapshot.state_digest(o2)


def test_warm_digest_covers_the_inputs():
    base = warm_digest("TCP-PRESS", SETTINGS, False)
    assert base == warm_digest("TCP-PRESS", SETTINGS, False)
    assert base != warm_digest("VIA-PRESS-5", SETTINGS, False)
    assert base != warm_digest("TCP-PRESS", SETTINGS, True)
    import dataclasses

    reseeded = dataclasses.replace(SETTINGS, seed=6)
    assert base != warm_digest("TCP-PRESS", reseeded, False)
    relaid = dataclasses.replace(SETTINGS, fault_at=31.0)
    assert base != warm_digest("TCP-PRESS", relaid, False)


def test_header_mismatch_reports_invalidated_not_miss(tmp_path):
    cache = WarmStartCache(WarmSpec(dir=str(tmp_path)))
    digest = warm_digest("TCP-PRESS", SETTINGS, False)
    cache._store(digest, b"not a real snapshot")
    (tmp_path / f"{digest}.ckpt").write_bytes(
        b"repro-warmstart format=0 python=0.0 marshal=0\nnot a real snapshot"
    )
    blob, status = cache._load(digest)
    assert blob is None and status == STATUS_INVALIDATED
    missing = warm_digest("VIA-PRESS-5", SETTINGS, False)
    blob, status = cache._load(missing)
    assert blob is None and status == STATUS_MISS
