"""Tests for the persistent campaign result store."""

import dataclasses
import json

import pytest

from repro.experiments.settings import DEFAULT_SETTINGS
from repro.experiments.store import (
    SCHEMA_VERSION,
    SUMMARY_DIR,
    CellKey,
    DiskStore,
    MemoryStore,
    SummaryKey,
    open_store,
)

KEY = CellKey(
    version="TCP-PRESS",
    settings_key=DEFAULT_SETTINGS.cache_key(),
    fault="link-down",
    seed=12345,
)
PAYLOAD = {"kind": "profile", "profile": {"fault": "link-down"}, "elapsed": 0.5}


class TestCellKey:
    def test_digest_is_stable(self):
        assert KEY.digest() == KEY.digest()

    def test_digest_distinguishes_every_field(self):
        variants = [
            dataclasses.replace(KEY, version="VIA-PRESS-5"),
            dataclasses.replace(KEY, fault="node-crash"),
            dataclasses.replace(KEY, fault=None),
            dataclasses.replace(KEY, seed=54321),
            dataclasses.replace(KEY, schema=SCHEMA_VERSION + 1),
            dataclasses.replace(
                KEY,
                settings_key=dataclasses.replace(
                    DEFAULT_SETTINGS, utilization=0.5
                ).cache_key(),
            ),
        ]
        digests = {KEY.digest()} | {v.digest() for v in variants}
        assert len(digests) == len(variants) + 1


class TestMemoryStore:
    def test_miss_then_hit(self):
        store = MemoryStore()
        assert store.get(KEY) is None
        store.put(KEY, PAYLOAD)
        assert store.get(KEY) == PAYLOAD

    def test_clear(self):
        store = MemoryStore()
        store.put(KEY, PAYLOAD)
        store.clear()
        assert store.get(KEY) is None
        assert len(store) == 0


class TestDiskStore:
    def test_miss_then_hit(self, tmp_path):
        store = DiskStore(tmp_path)
        assert store.get(KEY) is None
        store.put(KEY, PAYLOAD)
        assert store.get(KEY) == PAYLOAD
        assert len(store) == 1

    def test_survives_reopen(self, tmp_path):
        DiskStore(tmp_path).put(KEY, PAYLOAD)
        assert DiskStore(tmp_path).get(KEY) == PAYLOAD

    def test_settings_change_invalidates(self, tmp_path):
        """A different settings.cache_key() is a different universe."""
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        other = dataclasses.replace(
            KEY,
            settings_key=dataclasses.replace(
                DEFAULT_SETTINGS, fault_at=61.0
            ).cache_key(),
        )
        assert store.get(other) is None

    def test_schema_bump_invalidates(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        assert store.get(dataclasses.replace(KEY, schema=SCHEMA_VERSION + 1)) is None

    def test_corrupted_file_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        path = store._path(KEY)
        path.write_text("{ this is not json")
        assert store.get(KEY) is None

    def test_truncated_file_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        path = store._path(KEY)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert store.get(KEY) is None

    def test_wrong_shape_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        store._path(KEY).write_text(json.dumps([1, 2, 3]))
        assert store.get(KEY) is None

    def test_binary_garbage_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        store._path(KEY).write_bytes(b"\x00\xff\xfe garbage \x80")
        assert store.get(KEY) is None

    def test_clear_removes_cells_keeps_dir(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        store.put(dataclasses.replace(KEY, seed=99), PAYLOAD)
        store.clear()
        assert len(store) == 0
        assert tmp_path.exists()
        assert store.get(KEY) is None

    def test_no_tmp_droppings_after_put(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_cache_dir_collides_with_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        with pytest.raises(NotADirectoryError, match="not a directory"):
            DiskStore(target)

    def test_creates_cache_dir(self, tmp_path):
        nested = tmp_path / "a" / "b"
        DiskStore(nested).put(KEY, PAYLOAD)
        assert DiskStore(nested).get(KEY) == PAYLOAD


class TestOpenStore:
    def test_none_gives_memory(self):
        assert isinstance(open_store(None), MemoryStore)

    def test_path_gives_disk(self, tmp_path):
        store = open_store(tmp_path / "cache")
        assert isinstance(store, DiskStore)


class TestSchemaV5Golden:
    """Golden fixtures for the schema-v5 on-disk layout.

    Pins the record shape and key digests so that any accidental change
    to the cache identity or file format fails loudly here — the correct
    response to an intentional change is a SCHEMA_VERSION bump, which
    invalidates old stores instead of mis-reading them.
    """

    #: Fixed keys with a synthetic settings tuple: the digest depends
    #: only on the key fields, never on the live DEFAULT_SETTINGS.
    GOLDEN_CELL = CellKey(
        version="TCP-PRESS",
        settings_key=("golden", 1),
        fault="node-crash",
        seed=42,
        schema=5,
        rep=1,
    )
    GOLDEN_SUMMARY = SummaryKey(
        version="TCP-PRESS",
        settings_key=("golden", 1),
        fault="node-crash",
        policy_key=("ci", 3, 10, 0.05, 0.95, None),
        schema=5,
    )

    def test_cell_digest_is_pinned(self):
        assert self.GOLDEN_CELL.digest() == (
            "a997618af9b6d038ea7bf2454f2a3927"
            "da52a1ee9a332a4e89e6d0bceb0c2b18"
        )

    def test_summary_digest_is_pinned(self):
        assert self.GOLDEN_SUMMARY.digest() == (
            "06f39c856d876ba3cda16343d73f6661"
            "0b9c71a68b9c03e92fd1ef575760fe33"
        )

    def test_rep_is_provenance_not_identity(self, tmp_path):
        """Two keys differing only in ``rep`` address the same cell."""
        other = dataclasses.replace(self.GOLDEN_CELL, rep=7)
        assert other == self.GOLDEN_CELL
        assert other.digest() == self.GOLDEN_CELL.digest()
        store = DiskStore(tmp_path)
        assert store._path(other) == store._path(self.GOLDEN_CELL)

    def test_cell_record_layout_round_trips(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(self.GOLDEN_CELL, {"kind": "baseline", "tn": 2.0})
        raw = json.loads(store._path(self.GOLDEN_CELL).read_text())
        assert raw == {
            "key": {
                "version": "TCP-PRESS",
                "fault": "node-crash",
                "seed": 42,
                "schema": 5,
                "rep": 1,
            },
            "payload": {"kind": "baseline", "tn": 2.0},
        }
        # A fresh handle reads it back, and the reporting walk surfaces
        # the replication index.
        reopened = DiskStore(tmp_path)
        assert reopened.get(self.GOLDEN_CELL) == {
            "kind": "baseline",
            "tn": 2.0,
        }
        ((key_info, _),) = list(reopened.iter_cells())
        assert key_info["rep"] == 1

    def test_summary_record_layout_round_trips(self, tmp_path):
        store = DiskStore(tmp_path)
        payload = {"reps": 4, "reason": "converged", "ci_half_width": 0.01}
        store.put_summary(self.GOLDEN_SUMMARY, payload)
        path = store._summary_path(self.GOLDEN_SUMMARY)
        assert path.parent.name == SUMMARY_DIR
        raw = json.loads(path.read_text())
        assert raw == {
            "summary_key": {
                "version": "TCP-PRESS",
                "fault": "node-crash",
                "policy": ["ci", 3, 10, 0.05, 0.95, None],
                "schema": 5,
            },
            "payload": payload,
        }
        reopened = DiskStore(tmp_path)
        assert reopened.get_summary(self.GOLDEN_SUMMARY) == payload
        ((summary_key, got),) = list(reopened.iter_summaries())
        assert summary_key["policy"] == ["ci", 3, 10, 0.05, 0.95, None]
        assert got == payload

    def test_hand_written_record_is_readable(self, tmp_path):
        """The documented layout, written by hand, is a valid record —
        the reader is pinned to the format, not to the writer."""
        store = DiskStore(tmp_path)
        path = store._path(self.GOLDEN_CELL)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps(
                {
                    "key": {
                        "version": "TCP-PRESS",
                        "fault": "node-crash",
                        "seed": 42,
                        "schema": 5,
                        "rep": 1,
                    },
                    "payload": {"kind": "baseline", "tn": 3.5},
                }
            )
        )
        assert store.get(self.GOLDEN_CELL) == {"kind": "baseline", "tn": 3.5}

    def test_memory_store_summaries_round_trip(self):
        store = MemoryStore()
        assert store.get_summary(self.GOLDEN_SUMMARY) is None
        store.put_summary(self.GOLDEN_SUMMARY, {"reps": 3})
        assert store.get_summary(self.GOLDEN_SUMMARY) == {"reps": 3}
        store.clear()
        assert store.get_summary(self.GOLDEN_SUMMARY) is None

    def test_summaries_are_policy_dependent(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put_summary(self.GOLDEN_SUMMARY, {"reps": 4})
        other_policy = dataclasses.replace(
            self.GOLDEN_SUMMARY, policy_key=("fixed", 3, 3)
        )
        assert store.get_summary(other_policy) is None

    def test_corrupt_summary_is_a_miss_and_skipped(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put_summary(self.GOLDEN_SUMMARY, {"reps": 4})
        store._summary_path(self.GOLDEN_SUMMARY).write_text("{ nope")
        assert store.get_summary(self.GOLDEN_SUMMARY) is None
        assert list(store.iter_summaries()) == []

    def test_clear_removes_summaries_too(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(self.GOLDEN_CELL, {"kind": "baseline", "tn": 1.0})
        store.put_summary(self.GOLDEN_SUMMARY, {"reps": 4})
        store.clear()
        assert store.get(self.GOLDEN_CELL) is None
        assert store.get_summary(self.GOLDEN_SUMMARY) is None

    def test_v4_store_is_invalidated_not_reread(self, tmp_path):
        """A store written under schema v4 misses at v5 and reports the
        invalidation — its payloads are never re-read as current."""
        store = DiskStore(tmp_path)
        v4 = dataclasses.replace(self.GOLDEN_CELL, schema=4)
        store.put(v4, {"kind": "baseline", "tn": 9.9})
        assert store.get(self.GOLDEN_CELL) is None
        assert store.drain_notices() == [
            f"cache invalidated (schema v4→v{SCHEMA_VERSION}): "
            "1 cell(s) re-run"
        ]


class TestSchemaNotices:
    """A schema bump re-runs cells; drain_notices makes that visible."""

    def test_miss_over_stale_schema_is_reported(self, tmp_path):
        store = DiskStore(tmp_path)
        old_key = dataclasses.replace(KEY, schema=1)
        store.put(old_key, PAYLOAD)
        assert store.get(KEY) is None  # current schema misses...
        notices = store.drain_notices()
        assert notices == [
            f"cache invalidated (schema v1→v{SCHEMA_VERSION}): "
            "1 cell(s) re-run"
        ]

    def test_drain_resets(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(dataclasses.replace(KEY, schema=1), PAYLOAD)
        store.get(KEY)
        assert store.drain_notices()
        assert store.drain_notices() == []

    def test_cold_miss_is_not_a_schema_notice(self, tmp_path):
        store = DiskStore(tmp_path)
        assert store.get(KEY) is None
        assert store.drain_notices() == []

    def test_multiple_stale_cells_are_counted(self, tmp_path):
        store = DiskStore(tmp_path)
        for seed in (1, 2, 3):
            store.put(
                dataclasses.replace(KEY, schema=1, seed=seed), PAYLOAD
            )
        for seed in (1, 2, 3):
            store.get(dataclasses.replace(KEY, seed=seed))
        (notice,) = store.drain_notices()
        assert "3 cell(s) re-run" in notice

    def test_memory_store_has_no_notices(self):
        assert MemoryStore().drain_notices() == []
