"""Tests for the persistent campaign result store."""

import dataclasses
import json

import pytest

from repro.experiments.settings import DEFAULT_SETTINGS
from repro.experiments.store import (
    SCHEMA_VERSION,
    CellKey,
    DiskStore,
    MemoryStore,
    open_store,
)

KEY = CellKey(
    version="TCP-PRESS",
    settings_key=DEFAULT_SETTINGS.cache_key(),
    fault="link-down",
    seed=12345,
)
PAYLOAD = {"kind": "profile", "profile": {"fault": "link-down"}, "elapsed": 0.5}


class TestCellKey:
    def test_digest_is_stable(self):
        assert KEY.digest() == KEY.digest()

    def test_digest_distinguishes_every_field(self):
        variants = [
            dataclasses.replace(KEY, version="VIA-PRESS-5"),
            dataclasses.replace(KEY, fault="node-crash"),
            dataclasses.replace(KEY, fault=None),
            dataclasses.replace(KEY, seed=54321),
            dataclasses.replace(KEY, schema=SCHEMA_VERSION + 1),
            dataclasses.replace(
                KEY,
                settings_key=dataclasses.replace(
                    DEFAULT_SETTINGS, utilization=0.5
                ).cache_key(),
            ),
        ]
        digests = {KEY.digest()} | {v.digest() for v in variants}
        assert len(digests) == len(variants) + 1


class TestMemoryStore:
    def test_miss_then_hit(self):
        store = MemoryStore()
        assert store.get(KEY) is None
        store.put(KEY, PAYLOAD)
        assert store.get(KEY) == PAYLOAD

    def test_clear(self):
        store = MemoryStore()
        store.put(KEY, PAYLOAD)
        store.clear()
        assert store.get(KEY) is None
        assert len(store) == 0


class TestDiskStore:
    def test_miss_then_hit(self, tmp_path):
        store = DiskStore(tmp_path)
        assert store.get(KEY) is None
        store.put(KEY, PAYLOAD)
        assert store.get(KEY) == PAYLOAD
        assert len(store) == 1

    def test_survives_reopen(self, tmp_path):
        DiskStore(tmp_path).put(KEY, PAYLOAD)
        assert DiskStore(tmp_path).get(KEY) == PAYLOAD

    def test_settings_change_invalidates(self, tmp_path):
        """A different settings.cache_key() is a different universe."""
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        other = dataclasses.replace(
            KEY,
            settings_key=dataclasses.replace(
                DEFAULT_SETTINGS, fault_at=61.0
            ).cache_key(),
        )
        assert store.get(other) is None

    def test_schema_bump_invalidates(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        assert store.get(dataclasses.replace(KEY, schema=SCHEMA_VERSION + 1)) is None

    def test_corrupted_file_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        path = store._path(KEY)
        path.write_text("{ this is not json")
        assert store.get(KEY) is None

    def test_truncated_file_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        path = store._path(KEY)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert store.get(KEY) is None

    def test_wrong_shape_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        store._path(KEY).write_text(json.dumps([1, 2, 3]))
        assert store.get(KEY) is None

    def test_binary_garbage_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        store._path(KEY).write_bytes(b"\x00\xff\xfe garbage \x80")
        assert store.get(KEY) is None

    def test_clear_removes_cells_keeps_dir(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        store.put(dataclasses.replace(KEY, seed=99), PAYLOAD)
        store.clear()
        assert len(store) == 0
        assert tmp_path.exists()
        assert store.get(KEY) is None

    def test_no_tmp_droppings_after_put(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(KEY, PAYLOAD)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_cache_dir_collides_with_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a directory")
        with pytest.raises(NotADirectoryError, match="not a directory"):
            DiskStore(target)

    def test_creates_cache_dir(self, tmp_path):
        nested = tmp_path / "a" / "b"
        DiskStore(nested).put(KEY, PAYLOAD)
        assert DiskStore(nested).get(KEY) == PAYLOAD


class TestOpenStore:
    def test_none_gives_memory(self):
        assert isinstance(open_store(None), MemoryStore)

    def test_path_gives_disk(self, tmp_path):
        store = open_store(tmp_path / "cache")
        assert isinstance(store, DiskStore)


class TestSchemaNotices:
    """A schema bump re-runs cells; drain_notices makes that visible."""

    def test_miss_over_stale_schema_is_reported(self, tmp_path):
        store = DiskStore(tmp_path)
        old_key = dataclasses.replace(KEY, schema=1)
        store.put(old_key, PAYLOAD)
        assert store.get(KEY) is None  # current schema misses...
        notices = store.drain_notices()
        assert notices == [
            f"cache invalidated (schema v1→v{SCHEMA_VERSION}): "
            "1 cell(s) re-run"
        ]

    def test_drain_resets(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put(dataclasses.replace(KEY, schema=1), PAYLOAD)
        store.get(KEY)
        assert store.drain_notices()
        assert store.drain_notices() == []

    def test_cold_miss_is_not_a_schema_notice(self, tmp_path):
        store = DiskStore(tmp_path)
        assert store.get(KEY) is None
        assert store.drain_notices() == []

    def test_multiple_stale_cells_are_counted(self, tmp_path):
        store = DiskStore(tmp_path)
        for seed in (1, 2, 3):
            store.put(
                dataclasses.replace(KEY, schema=1, seed=seed), PAYLOAD
            )
        for seed in (1, 2, 3):
            store.get(dataclasses.replace(KEY, seed=seed))
        (notice,) = store.drain_notices()
        assert "3 cell(s) re-run" in notice

    def test_memory_store_has_no_notices(self):
        assert MemoryStore().drain_notices() == []
