"""Rendering of the campaign run-telemetry summary.

``trace_summary_report`` takes a ``CampaignReport``; these tests build
reports by hand to pin the aggregation and every rendering branch —
notices first, the event table, and the degraded messages for cells
served from pre-telemetry caches.
"""

from repro.analysis.report import trace_summary_report
from repro.experiments.runner import CampaignReport, CellRecord


def _cell(version="TCP-PRESS", fault=None, telemetry=None, cached=True):
    return CellRecord(
        version=version, fault=fault, rep=0, seed=1,
        elapsed=0.0, cached=cached, telemetry=telemetry,
    )


def _telemetry(events):
    return {
        "event_total": sum(events.values()),
        "events": dict(events),
        "metrics": {},
    }


def test_totals_are_summed_across_cells():
    report = CampaignReport(cells=[
        _cell(telemetry=_telemetry({"press.cache.hit": 3})),
        _cell(fault="link-down",
              telemetry=_telemetry({"press.cache.hit": 2, "net.frame.drop": 1})),
    ])
    text = trace_summary_report(report)
    assert "run telemetry: 6 events across 2 cell(s)" in text
    assert "press.cache.hit" in text and "net.frame.drop" in text


def test_notices_render_first_as_note_lines():
    report = CampaignReport(
        cells=[_cell(telemetry=_telemetry({"press.cache.hit": 1}))],
        notices=["cache invalidated (schema v2→v3): 4 cell(s) re-run",
                 "2 bus subscriber error(s) across 1 cell(s)"],
    )
    lines = trace_summary_report(report).splitlines()
    assert lines[0] == "note: cache invalidated (schema v2→v3): 4 cell(s) re-run"
    assert lines[1] == "note: 2 bus subscriber error(s) across 1 cell(s)"
    assert lines[2].startswith("run telemetry:")


def test_all_pre_telemetry_cells_explain_themselves():
    report = CampaignReport(cells=[_cell(), _cell(fault="link-down")])
    text = trace_summary_report(report)
    assert "no run telemetry recorded" in text
    assert "--clear-cache" in text


def test_mixed_cells_count_only_instrumented_ones():
    report = CampaignReport(cells=[
        _cell(),  # schema-v1 payload: no telemetry
        _cell(fault="link-down", telemetry=_telemetry({"press.cache.hit": 5})),
    ])
    text = trace_summary_report(report)
    assert "run telemetry: 5 events across 1 cell(s)" in text
    assert "no run telemetry recorded" not in text


def test_empty_report_renders_empty():
    assert trace_summary_report(CampaignReport()) == ""
