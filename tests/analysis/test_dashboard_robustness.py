"""Dashboard and perf views over empty, partial, and stale stores.

Operators point ``dashboard`` / ``perf-report`` / ``perf-compare`` at
whatever cache dir they have — half-filled by an interrupted campaign,
written by an older schema, or never profiled at all.  Every renderer
must degrade to a visible notice, never a KeyError/TypeError.
"""

import json

import pytest

from repro.analysis.dashboard import dashboard_from_store, render_dashboard
from repro.analysis.perf import perf_compare, perf_report_from_store


def test_dashboard_from_store_rejects_non_directories(tmp_path):
    with pytest.raises(ValueError, match="not a directory"):
        dashboard_from_store(tmp_path / "nope")


def test_dashboard_from_store_rejects_empty_stores(tmp_path):
    with pytest.raises(ValueError, match="no campaign cells"):
        dashboard_from_store(tmp_path)


def test_render_dashboard_with_no_cells_shows_notices():
    html = render_dashboard([])
    for note in (
        "no complete version in the store",
        "no fault cells in the store",
        "no divergence reports stored",
        "no health telemetry stored",
        "no flight-recorder data stored",
    ):
        assert note in html, note


def test_render_dashboard_with_bare_minimum_payloads():
    """Keys and payloads missing every optional field still render."""
    rows = [
        ({"version": "TCP-PRESS", "fault": None, "seed": 1}, {}),
        ({"version": "TCP-PRESS", "fault": "link-down", "seed": 1}, {}),
        ({}, {}),  # a row with no identity at all
    ]
    html = render_dashboard(rows)
    assert "TCP-PRESS" in html
    assert "link-down" in html


def test_render_dashboard_flags_stale_schema_generations():
    rows = [
        (
            {"version": "V", "fault": "f", "seed": 1, "schema": 1},
            {"timeline": {"availability": 0.5}},
        ),
        (
            {"version": "V", "fault": "g", "seed": 1, "schema": 2},
            {"timeline": {"availability": 0.9}},
        ),
    ]
    html = render_dashboard(rows)
    assert "older store schema" in html


def test_render_dashboard_with_malformed_perf_rows():
    """Perf rows that are stale, empty, or garbage degrade gracefully."""
    perf = [
        ({"version": "V", "fault": "f"}, {}),
        ({}, {"execute_s": "0.5"}),  # stringly-typed stale record
        ({"version": "V"}, None),  # unreadable record half
    ]
    html = render_dashboard([], perf=perf)
    assert "<h2>performance (flight recorder)</h2>" in html


def test_render_dashboard_from_ledger_only():
    """A ledger without perf/ rows (pruned store) still fills the panel."""
    ledger = {
        "wall_clock_s": 2.0,
        "jobs": 2,
        "timing": {
            "execute_s": 1.5,
            "restore_s": 0.25,
            "speedup": 0.9,
            "parallelism": 0.8,
        },
        "profile": {
            "events": 10,
            "self_s": 1.0,
            "layers": {"net": {"events": 10, "self_s": 1.0}},
            "counters": {"fabric.fast_cached": 5, "fabric.slow": 1},
            "engine": {"events_processed": 10},
            "lp": {"shards": 2, "lp_events": [6, 4], "imbalance": 1.2},
        },
        "top_cells": [{"cell": "V/f#r0", "execute_s": 1.5, "events": 10}],
    }
    html = render_dashboard([], ledger=ledger)
    assert "net" in html
    assert "fastpath" in html
    assert "V/f#r0" in html


def test_perf_report_on_unprofiled_store_prints_a_notice(tmp_path):
    text = perf_report_from_store(tmp_path)
    assert "no flight-recorder data found" in text
    assert "--profile" in text


def test_perf_report_rejects_non_directories(tmp_path):
    with pytest.raises(ValueError, match="not a directory"):
        perf_report_from_store(tmp_path / "nope")


def test_perf_report_survives_a_corrupt_ledger_and_records(tmp_path):
    (tmp_path / "BENCH_campaign.json").write_text("{not json", "utf-8")
    perf_dir = tmp_path / "perf"
    perf_dir.mkdir()
    (perf_dir / "deadbeef.json").write_text("also not json", "utf-8")
    (perf_dir / "cafe.json").write_text(
        json.dumps({"key": {"version": "V"}, "perf": {"execute_s": 0.5}}),
        "utf-8",
    )
    text = perf_report_from_store(tmp_path)
    assert "1 cell record(s)" in text


def test_perf_compare_of_two_empty_dirs_is_not_comparable(tmp_path):
    a, b = tmp_path / "a", tmp_path / "b"
    a.mkdir()
    b.mkdir()
    text, comparable = perf_compare(a, b)
    assert not comparable
    assert "no flight-recorder data" in text
