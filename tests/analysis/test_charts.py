"""Tests for the terminal chart helpers."""

import pytest

from repro.analysis.charts import bar_chart, sparkline, timeline_plot


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_flat_series_uses_lowest_glyph(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        s = sparkline(list(range(8)))
        assert list(s) == sorted(s)

    def test_explicit_bounds(self):
        s = sparkline([5.0], lo=0.0, hi=10.0)
        assert s in "▃▄▅"


class TestBarChart:
    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_rows_and_proportions(self):
        out = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].count("█") == 10
        assert 0 < lines[1].count("█") <= 5

    def test_labels_aligned(self):
        out = bar_chart({"short": 1.0, "muchlonger": 2.0})
        starts = {line.index(" ") for line in out.splitlines()}
        # labels padded to a common width
        assert all("█" in line or line for line in out.splitlines())


class TestTimelinePlot:
    def test_empty(self):
        assert timeline_plot([]) == "(no data)"

    def test_height_rows_plus_axis(self):
        series = [(float(t), 100.0) for t in range(0, 100)]
        out = timeline_plot(series, bucket=10.0, height=5)
        assert len(out.splitlines()) == 6  # 5 rows + axis

    def test_markers_rendered(self):
        series = [(float(t), 100.0) for t in range(0, 100)]
        out = timeline_plot(series, bucket=10.0, markers={50.0: "F"})
        assert "F" in out.splitlines()[-1]

    def test_zero_series_plots_blank(self):
        series = [(float(t), 0.0) for t in range(0, 50)]
        out = timeline_plot(series, bucket=10.0)
        assert "█" not in out
