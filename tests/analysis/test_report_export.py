"""Tests for reports and data export."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    profiles_to_csv,
    result_to_dict,
    results_to_json,
    timeline_to_csv,
    timeline_to_dict,
)
from repro.analysis.report import (
    campaign_report,
    category_breakdown,
    profile_table,
    result_summary,
)
from repro.core.faultload import ComponentFault, FaultLoad
from repro.core.model import ProfileSet, evaluate
from repro.core.stages import SevenStageProfile, Stage
from repro.faults.spec import FaultKind
from repro.sim.monitor import Annotation, Timeline


@pytest.fixture
def profiles():
    ps = ProfileSet("TCP-PRESS", 5000.0)
    ps.add(
        SevenStageProfile.from_pairs(
            "node-crash", "TCP-PRESS", 5000.0,
            [(Stage.A, 15.0, 1000.0), (Stage.C, 160.0, 3500.0)],
        )
    )
    ps.add(SevenStageProfile.no_impact("memory-pinning", "TCP-PRESS", 5000.0))
    return ps


@pytest.fixture
def result(profiles):
    load = FaultLoad(
        components=(
            ComponentFault(FaultKind.NODE_CRASH, mttf=300_000.0, mttr=180.0),
            ComponentFault(FaultKind.MEMORY_PINNING, mttf=5e6, mttr=180.0),
        )
    )
    return evaluate(profiles, load)


@pytest.fixture
def timeline():
    return Timeline(
        version="TCP-PRESS",
        fault="node-crash",
        bucket_width=1.0,
        series=[(0.0, 100.0), (1.0, 0.0), (2.0, 50.0)],
        failures=[(0.0, 0.0), (1.0, 20.0), (2.0, 0.0)],
        annotations=[Annotation(1.0, "fault-injected", "x")],
        availability=0.9,
    )


def test_profile_table_lists_stages(profiles):
    out = profile_table(profiles)
    assert "node-crash" in out
    assert "15.0s@  1000" in out
    assert "—" in out  # absent stages


def test_result_summary_has_headline_and_bars(result):
    out = result_summary(result)
    assert "AA =" in out and "P =" in out
    assert "node-crash" in out
    assert "█" in out


def test_category_breakdown_sums_to_unavailability(result):
    groups = category_breakdown(result)
    assert sum(groups.values()) == pytest.approx(result.unavailability)
    assert "node" in groups


def test_campaign_report_covers_both_phases(profiles):
    out = campaign_report({"TCP-PRESS": profiles})
    assert "PHASE 1" in out and "PHASE 2" in out
    assert "1/day" in out and "1/month" in out


def test_timeline_csv_roundtrips(timeline):
    rows = list(csv.reader(io.StringIO(timeline_to_csv(timeline))))
    assert rows[0] == ["time_s", "throughput_rps", "failures_rps"]
    assert rows[2] == ["1.0", "0.00", "20.00"]
    assert len(rows) == 4


def test_profiles_csv_has_all_stages(profiles):
    rows = list(csv.reader(io.StringIO(profiles_to_csv(profiles))))
    assert len(rows) == 1 + 2 * 7  # header + 2 faults x 7 stages


def test_result_json_parses(result):
    data = json.loads(results_to_json([result]))
    assert data[0]["version"] == "TCP-PRESS"
    assert 0 <= data[0]["availability"] <= 1
    assert len(data[0]["contributions"]) == 2


def test_timeline_dict(timeline):
    d = timeline_to_dict(timeline)
    assert d["fault"] == "node-crash"
    assert d["annotations"][0]["label"] == "fault-injected"
    assert d["series"][0] == [0.0, 100.0]
