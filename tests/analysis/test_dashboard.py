"""The campaign dashboard: one self-contained HTML file per store.

A small real campaign (two versions, one fault) is rendered once per
module; the assertions check coverage (every cell represented), the
self-containment contract (no scripts, stylesheets, or network fetches),
and the warning paths for stale-schema cells and subscriber errors.
"""

import json

import pytest

from repro.analysis.dashboard import dashboard_from_store, render_dashboard
from repro.experiments.runner import run_campaign
from repro.experiments.settings import Phase1Settings
from repro.experiments.store import DiskStore
from repro.faults.spec import FaultKind
from repro.press.cluster import SMOKE_SCALE

FAST = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=1234,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=1,
)

VERSIONS = ["TCP-PRESS", "VIA-PRESS-5"]
FAULT = FaultKind.LINK_DOWN


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("campaign-store")
    run_campaign(
        FAST, versions=VERSIONS, faults=[FAULT], store=DiskStore(path)
    )
    return path


@pytest.fixture(scope="module")
def html(store_dir):
    return dashboard_from_store(store_dir).read_text(encoding="utf-8")


def test_dashboard_lands_inside_the_store_by_default(store_dir):
    out = dashboard_from_store(store_dir)
    assert out == store_dir / "dashboard.html"
    assert out.exists()


def test_dashboard_covers_every_cell(html):
    for version in VERSIONS:
        assert version in html
    assert FAULT.value in html
    # One stage-banded timeline per (version, fault-or-baseline) pair.
    assert html.count("<figure>") == 2 * len(VERSIONS)
    assert html.count("<svg") == 2 * len(VERSIONS)
    for section in (
        "overview",
        "performability",
        "fault matrix",
        "timelines",
        "detector divergence",
        "run health",
    ):
        assert f"<h2>{section}</h2>" in html, section


def test_dashboard_is_self_contained(html):
    assert "<script" not in html
    assert "<link" not in html
    assert "@import" not in html
    # The only URL allowed is the SVG namespace identifier (never
    # fetched), so the dashboard renders from a file:// open with the
    # network cable unplugged.
    stripped = html.replace("http://www.w3.org/2000/svg", "")
    assert "http://" not in stripped and "https://" not in stripped


def test_dashboard_rebuilds_performability_per_version(html):
    # Both fault loads evaluated, one table row per version in each.
    assert html.count("fault load:") == 2
    for version in VERSIONS:
        assert html.count(f"<td class='label'>{version}</td>") >= 2


def test_divergence_and_health_tables_have_fault_rows(html):
    assert "max boundary err" in html
    assert "time in violation" in html
    assert "calibrated Tn" in html


def test_stale_schema_cells_are_ignored_with_a_warning():
    rows = [
        _row(seed=1, schema=3, kind="baseline", tn=10.0),
        # Orphaned old-generation cell: no current-schema counterpart.
        _row(seed=999, schema=1, kind="baseline", tn=999.0),
    ]
    html = render_dashboard(rows)
    assert "1 cell(s) from older store schema" in html
    assert "999" not in html  # the stale payload contributes nothing


def test_same_cell_across_schemas_keeps_the_newest_silently():
    rows = [
        _row(seed=1, schema=1, kind="baseline", tn=999.0),
        _row(seed=1, schema=3, kind="baseline", tn=10.0),
    ]
    html = render_dashboard(rows)
    assert "older store schema" not in html
    assert "999" not in html


def test_empty_or_missing_store_raises(tmp_path):
    with pytest.raises(ValueError, match="no campaign cells"):
        dashboard_from_store(tmp_path)
    with pytest.raises(ValueError, match="not a directory"):
        dashboard_from_store(tmp_path / "nope")


def _row(version="V", fault=None, seed=1, schema=3, **payload):
    key = {"version": version, "fault": fault, "seed": seed, "schema": schema}
    return key, payload


def test_render_escapes_untrusted_store_content():
    evil = "<script>alert(1)</script>"
    html = render_dashboard([_row(version=evil)], source=evil)
    assert evil not in html
    assert html.count("&lt;script&gt;") >= 2


def test_render_warns_on_subscriber_errors():
    rows = [
        _row(seed=1, telemetry={"subscriber_errors": 2}),
        _row(seed=2, fault="link-down", telemetry={"subscriber_errors": 1}),
    ]
    html = render_dashboard(rows)
    assert "3 bus subscriber error(s)" in html
    assert "partial event stream" in html


def test_render_degrades_gracefully_without_observatory_payloads():
    """Pre-v3-shaped payloads (no timeline/observatory/divergence) still
    render — with placeholder notes instead of charts."""
    rows = [
        _row(seed=1, kind="baseline", tn=10.0),
        _row(seed=2, fault="link-down", kind="profile"),
    ]
    html = render_dashboard(rows)
    assert "no timelines stored" in html
    assert "no divergence reports stored" in html
    assert "no health telemetry stored" in html
    assert "<script" not in html


def test_stored_payloads_are_json_round_trippable(store_dir):
    """The dashboard consumes exactly what the store persisted: every
    payload section it reads must already be plain JSON."""
    rows = list(DiskStore(store_dir).iter_cells())
    assert rows, "fixture store is empty"
    for key, payload in rows:
        json.dumps(payload)
        assert "telemetry" in payload
        assert "observatory" in payload
        assert "timeline" in payload
        if key["fault"] is not None:
            assert "divergence" in payload
