"""Property-based tests for the engine's ordering/cancellation contract.

The campaign's determinism guarantee rests on three engine properties:
same-timestamp events fire in scheduling order, cancelled timers are
inert tombstones, and StopSimulation halts the clock exactly at the
raising event.  Hypothesis explores the schedules a hand-written case
would miss.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, SimulationError, StopSimulation

times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(st.lists(times, min_size=1, max_size=40))
def test_equal_timestamps_fire_in_scheduling_order(ts):
    """For every timestamp, ties break by scheduling sequence."""
    e = Engine()
    fired = []
    for i, t in enumerate(ts):
        e.call_at(t, lambda i=i: fired.append(i))
    e.run()
    assert len(fired) == len(ts)
    # Global order: sorted by (time, scheduling index).
    expected = [i for i, _ in sorted(enumerate(ts), key=lambda p: (p[1], p[0]))]
    assert fired == expected


@given(
    st.lists(times, min_size=1, max_size=40),
    st.data(),
)
def test_cancelled_timers_never_fire(ts, data):
    e = Engine()
    fired = []
    timers = [e.call_at(t, lambda i=i: fired.append(i)) for i, t in enumerate(ts)]
    cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(ts) - 1))
    )
    for i in cancel:
        timers[i].cancel()
        timers[i].cancel()  # idempotent: second cancel is a no-op
        assert not timers[i].active
    e.run()
    assert set(fired) == set(range(len(ts))) - cancel
    for i, timer in enumerate(timers):
        if i in cancel:
            assert not timer.fired
        else:
            assert timer.fired


@given(st.lists(times, min_size=2, max_size=30, unique=True), st.data())
def test_cancel_mid_run_tombstones_pending_timer(ts, data):
    """A timer cancelled by an event at a strictly earlier time must not
    fire, even though it is already sitting in the heap."""
    ts = sorted(ts)
    e = Engine()
    fired = []
    timers = [e.call_at(t, lambda i=i: fired.append(i)) for i, t in enumerate(ts)]
    victim = data.draw(st.integers(min_value=1, max_value=len(ts) - 1))
    # Cancel the victim from an event scheduled at time<=victim's but
    # sequenced after the victim was pushed into the heap.
    e.call_at(ts[victim - 1], timers[victim].cancel)
    e.run()
    assert victim not in fired
    assert fired == [i for i in range(len(ts)) if i != victim]


@given(
    st.lists(times, min_size=1, max_size=30),
    st.data(),
)
def test_stop_simulation_halts_at_raising_event(ts, data):
    e = Engine()
    fired = []
    stop_at_idx = data.draw(st.integers(min_value=0, max_value=len(ts) - 1))
    order = sorted(enumerate(ts), key=lambda p: (p[1], p[0]))
    # Choose the stopper by *execution* position so we know exactly which
    # events precede it.
    stopper_sched_idx, stopper_time = order[stop_at_idx]

    def make(i):
        def cb():
            fired.append(i)
            if i == stopper_sched_idx:
                raise StopSimulation

        return cb

    for i, t in enumerate(ts):
        e.call_at(t, make(i))
    e.run()
    # Clock froze exactly at the raising event's time.
    assert e.now == stopper_time
    # Everything executing strictly before the stopper ran; nothing after.
    assert fired == [i for i, _ in order[: stop_at_idx + 1]]
    # The remaining timers are still pending, untouched.
    assert e.pending == len(ts) - len(fired)


def _raise_stop():
    raise StopSimulation


@given(times, times)
def test_stop_leaves_engine_reusable(t1, t2):
    """After StopSimulation, run() can be called again and the clock
    resumes from the stop point."""
    lo, hi = sorted((t1, t2))
    hi = hi + 1.0
    e = Engine()
    e.call_at(lo, _raise_stop)
    seen = []
    e.call_at(hi, lambda: seen.append(e.now))
    e.run()
    assert e.now == lo and seen == []
    e.run()
    assert seen == [hi]


@settings(max_examples=25)
@given(st.lists(times, min_size=1, max_size=20))
def test_peek_skips_tombstones(ts):
    e = Engine()
    timers = [e.call_at(t, lambda: None) for t in ts]
    for timer in timers[::2]:
        timer.cancel()
    live = [t for i, t in enumerate(ts) if i % 2 == 1]
    assert e.peek() == (min(live) if live else math.inf)
