"""The deterministic snapshot/restore subsystem (repro.sim.snapshot).

The contract: a captured simulation, restored, continues **bit
identically** — same event order, same timestamps, same RNG draws, same
component state digests.  These tests exercise the subsystem from the
bare engine up to a full PRESS cluster of every version.
"""

import pickle

import pytest

from repro.press.cluster import SMOKE_SCALE, PressCluster
from repro.press.config import ALL_VERSIONS
from repro.sim import snapshot
from repro.sim.engine import Engine, SimulationError
from repro.sim.rng import RngRegistry


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


def _chain(e: Engine, log: list, label: str, until: int) -> None:
    def tick():
        log.append((label, e.now, len(log)))
        if len(log) < until:
            e.call_after(0.25, tick)

    e.call_after(0.25, tick)


def test_engine_round_trip_continues_identically():
    e = Engine()
    log: list = []
    _chain(e, log, "a", 40)
    e.run(until=5.0)
    assert log, "warm segment should have fired events"

    blob = snapshot.capture((e, log))
    e2, log2 = snapshot.restore(blob)
    assert e2.now == e.now
    assert e2.events_processed == e.events_processed

    e.run(until=20.0)
    e2.run(until=20.0)
    assert log2 == log
    assert e2.events_processed == e.events_processed
    assert e2.snapshot_state() == e.snapshot_state()


def test_running_engine_refuses_capture():
    e = Engine()
    boom: dict = {}

    def try_capture():
        try:
            snapshot.capture(e)
        except (snapshot.SnapshotError, SimulationError) as exc:
            boom["error"] = exc

    e.call_after(1.0, try_capture)
    e.run()
    assert "error" in boom


def test_generators_are_rejected_loudly():
    gen = (x for x in range(3))
    next(gen)
    with pytest.raises(snapshot.SnapshotError):
        snapshot.capture({"live": gen})


def test_non_importable_closure_round_trips():
    """Defensive marshal fallback: a stray local closure still pickles."""

    def make_counter(start):
        count = [start]

        def bump(n=1):
            count[0] += n
            return count[0]

        return bump

    bump = make_counter(10)
    bump()
    restored = snapshot.restore(snapshot.capture(bump))
    assert restored() == bump()  # both advance from 11 -> 12


# ----------------------------------------------------------------------
# Digests and summaries
# ----------------------------------------------------------------------


def test_state_digest_tracks_snapshot_state():
    e1, e2 = Engine(), Engine()
    assert snapshot.state_digest(e1) == snapshot.state_digest(e2)
    e1.call_after(1.0, lambda: None)
    e1.run()
    assert snapshot.state_digest(e1) != snapshot.state_digest(e2)


def test_checkpoint_digest_sensitivity():
    base = snapshot.checkpoint_digest("TCP-PRESS", (1, 2), 7)
    assert base == snapshot.checkpoint_digest("TCP-PRESS", (1, 2), 7)
    assert base != snapshot.checkpoint_digest("VIA-PRESS", (1, 2), 7)
    assert base != snapshot.checkpoint_digest("TCP-PRESS", (1, 3), 7)
    assert base != snapshot.checkpoint_digest("TCP-PRESS", (1, 2), 8)


def test_blob_summary_counts_ops():
    blob = snapshot.capture({"a": 1, "b": [1, 2, 3]})
    info = snapshot.blob_summary(blob)
    assert info["bytes"] == len(blob)
    assert info["pickle_ops"] > 0


def test_rng_registry_round_trips_through_pickle():
    reg = RngRegistry(42)
    reg.stream("clients").random()
    blob = snapshot.capture(reg)
    reg2 = snapshot.restore(blob)
    assert reg2.snapshot_state() == reg.snapshot_state()
    assert reg2.stream("clients").random() == reg.stream("clients").random()


# ----------------------------------------------------------------------
# Whole clusters, every version
# ----------------------------------------------------------------------


def _cluster(version: str) -> PressCluster:
    c = PressCluster(ALL_VERSIONS[version], scale=SMOKE_SCALE, seed=3)
    c.start()
    c.run_until(20.0)
    return c


@pytest.mark.parametrize("version", sorted(ALL_VERSIONS))
def test_cluster_round_trip_is_bit_identical(version):
    """Capture at t=20, then run the original and the restored copy to
    t=45 and compare everything observable: engine clock/sequence/event
    count, every component's state digest, and the measured timeline."""
    c = _cluster(version)
    blob = snapshot.capture(c)
    c2 = snapshot.restore(blob)
    assert snapshot.state_digest(c2) == snapshot.state_digest(c)

    c.run_until(45.0)
    c2.run_until(45.0)
    assert c2.engine.now == c.engine.now
    assert c2.engine.events_processed == c.engine.events_processed
    assert c2.snapshot_state() == c.snapshot_state()
    assert snapshot.state_digest(c2) == snapshot.state_digest(c)
    assert c2.monitor.series(0.0, 45.0) == c.monitor.series(0.0, 45.0)
    assert c2.measured_rate(5.0, 45.0) == c.measured_rate(5.0, 45.0)


def test_cluster_snapshot_state_is_json_safe():
    import json

    c = _cluster("TCP-PRESS")
    json.dumps(c.snapshot_state())


def test_capture_wraps_pickling_errors():
    class Hostile:
        def __reduce__(self):
            raise TypeError("nope")

    with pytest.raises(snapshot.SnapshotError):
        snapshot.capture(Hostile())
