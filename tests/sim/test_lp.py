"""Unit tests of the sharded engine (repro.sim.lp).

The contract under test: :class:`ShardedEngine` is a drop-in
:class:`Engine` whose only observable difference is introspection —
execution order, sequence numbering, clock behaviour, StopSimulation,
cancellation, and snapshot state are exactly those of the single loop,
for every shard count and every pin pattern.
"""

import math
import pickle
import random

import pytest

from repro.sim.engine import Engine, SimulationError, StopSimulation
from repro.sim.lp import ShardedEngine, partition_nodes


def test_shard_count_validation():
    with pytest.raises(ValueError):
        ShardedEngine(shards=0)
    e = ShardedEngine(shards=3)
    assert e.shards == 3


def test_assign_and_shard_of():
    e = ShardedEngine(shards=2)
    e.assign_shard("node0", 0)
    e.assign_shard("node1", 1)
    assert e.shard_of("node0") == 0
    assert e.shard_of("node1") == 1
    assert e.shard_of("ghost") is None
    assert e.shard_map == {"node0": 0, "node1": 1}
    with pytest.raises(ValueError):
        e.assign_shard("node2", 2)  # out of range


def test_pin_returns_previous_affinity():
    e = ShardedEngine(shards=3)
    assert e.pin(2) == 0
    assert e.pin(1) == 2
    assert e.pin(0) == 1


def test_plain_engine_semantics_single_shard():
    """shards=1 behaves exactly like the base engine's public contract."""
    e = ShardedEngine(shards=1)
    fired = []
    e.call_after(1.0, fired.append, "a")
    e.call_after(1.0, fired.append, "b")
    e.call_at(0.5, fired.append, "c")
    e.run()
    assert fired == ["c", "a", "b"]
    assert e.now == 1.0
    assert e.events_processed == 3
    assert e.pending == 0


def test_past_scheduling_rejected():
    e = ShardedEngine(shards=2)
    e.call_after(1.0, lambda: None)
    e.run()
    with pytest.raises(SimulationError):
        e.call_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        e.call_after(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        e.call_at(math.nan, lambda: None)


def test_cross_lp_ordering_same_timestamp():
    """Ties across LPs break by global scheduling sequence, as in the
    single loop."""
    e = ShardedEngine(shards=3)
    fired = []
    for i, lp in enumerate([2, 0, 1, 1, 2, 0]):
        prev = e.pin(lp)
        e.call_at(1.0, fired.append, i)
        e.pin(prev)
    e.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_burst_bound_lowered_by_cross_lp_schedule():
    """An LP bursting ahead must yield when it schedules an earlier
    event onto another LP (the null-message analogue)."""
    e = ShardedEngine(shards=2)
    fired = []

    def lp0_event_one():
        fired.append("lp0-one")
        # Schedule onto LP 1 *earlier* than LP 0's own next event.
        prev = e.pin(1)
        e.call_at(1.5, fired.append, "lp1-injected")
        e.pin(prev)

    e.call_at(1.0, lp0_event_one)
    e.call_at(2.0, fired.append, "lp0-two")
    e.run()
    assert fired == ["lp0-one", "lp1-injected", "lp0-two"]
    stats = e.lp_stats()
    assert stats["cross_lp_events"] >= 1
    assert stats["null_updates"] >= 1
    assert stats["channel_clocks"].get("0->1") == 1.5


def test_until_clock_advance_matches_engine():
    for mk in (Engine, lambda: ShardedEngine(shards=3)):
        e = mk()
        e.call_after(1.0, lambda: None)
        e.run(until=0.25)
        assert e.now == 0.25
        assert e.pending == 1
        e.run(until=5.0)
        assert e.now == 5.0
        assert e.pending == 0


def test_stop_simulation_halts_mid_burst():
    e = ShardedEngine(shards=2)
    fired = []

    def boom():
        fired.append("boom")
        raise StopSimulation

    e.call_at(1.0, fired.append, "a")
    e.call_at(2.0, boom)
    e.call_at(3.0, fired.append, "never")
    e.run()
    assert fired == ["a", "boom"]
    assert e.now == 2.0
    assert e.pending == 1  # the t=3 event survives


def test_step_and_peek_across_queues():
    e = ShardedEngine(shards=2)
    fired = []
    prev = e.pin(1)
    e.call_at(1.0, fired.append, "lp1")
    e.pin(prev)
    e.call_at(2.0, fired.append, "lp0")
    assert e.peek() == 1.0
    assert e.step()
    assert fired == ["lp1"] and e.now == 1.0
    assert e.peek() == 2.0
    assert e.step()
    assert not e.step()
    assert fired == ["lp1", "lp0"]


def test_step_runs_callback_under_its_lp_affinity():
    e = ShardedEngine(shards=2)
    fired = []

    def lp1_event():
        # This callback lives on LP 1, so its child must land there too.
        e.call_after(1.0, fired.append, "child")

    prev = e.pin(1)
    e.call_at(1.0, lp1_event)
    e.pin(prev)
    assert e.step()
    depths = e.lp_stats()["queue_depths"]
    assert depths == [0, 1]
    e.run()
    assert fired == ["child"]


def test_cancellation_and_compaction_across_queues():
    e = ShardedEngine(shards=4)
    timers = []
    for i in range(600):
        prev = e.pin(i % 4)
        timers.append(e.call_after(float(i % 13) + 1.0, lambda: None))
        e.pin(prev)
    for t in timers[::2]:
        t.cancel()
    assert e.pending == 300
    e.run()
    assert e.events_processed == 300
    assert e.pending == 0
    assert e.queued_tombstones == 0


def test_snapshot_getstate_roundtrip():
    e = ShardedEngine(shards=2)
    e.assign_shard("node0", 0)
    e.assign_shard("node1", 1)
    prev = e.pin(1)
    e.call_after(1.0, min, 1, 2)
    e.pin(prev)
    r = pickle.loads(pickle.dumps(e))
    assert isinstance(r, ShardedEngine)
    assert r.shards == 2
    assert r.shard_of("node1") == 1
    assert r.pending == 1
    assert r.snapshot_state() == e.snapshot_state()
    r.run()
    assert r.now == 1.0 and r.events_processed == 1


def test_snapshot_state_matches_plain_engine():
    """The digest input must be identical to a single-loop engine's —
    LP bookkeeping must stay out of it."""
    a, b = Engine(), ShardedEngine(shards=3)
    for e in (a, b):
        e.call_after(1.0, lambda: None)
        e.call_after(2.0, lambda: None)
        e.run(until=1.5)
    assert a.snapshot_state() == b.snapshot_state()


def test_lbts_is_min_head_time():
    e = ShardedEngine(shards=2)
    prev = e.pin(1)
    e.call_at(3.0, lambda: None)
    e.pin(prev)
    e.call_at(7.0, lambda: None)
    assert e.lbts() == 3.0
    e.run()
    assert e.lbts() == math.inf


def test_partition_nodes_contiguous_and_balanced():
    nodes = [f"node{i}" for i in range(10)]
    part = partition_nodes(nodes, 4)
    assert set(part.values()) == {0, 1, 2, 3}
    # Contiguous: LP index is non-decreasing along the node order.
    lps = [part[n] for n in nodes]
    assert lps == sorted(lps)
    # Balanced: block sizes differ by at most one.
    sizes = [lps.count(lp) for lp in range(4)]
    assert max(sizes) - min(sizes) <= 1
    assert partition_nodes([], 4) == {}
    assert set(partition_nodes(nodes, 1).values()) == {0}


def _random_workload(e, pin_lps, seed=42):
    """Contract-abiding random schedule/cancel workload; returns the
    execution order plus the engine's terminal accounting."""
    order = []
    rng = random.Random(seed)
    timers = {}

    def act(tag, depth):
        timers.pop(tag, None)  # fired: drop the handle (lifecycle contract)
        order.append((e.now, tag))
        if depth > 5:
            return
        for k in range(rng.randrange(0, 3)):
            delay = rng.choice([0.0, 1e-6, 0.5, 2.0])
            want_pin = rng.random() < 0.4
            lp = rng.randrange(8)
            child = f"{tag}.{k}"
            if pin_lps and want_pin:
                prev = e.pin(lp % pin_lps)
                timers[child] = e.call_after(delay, act, child, depth + 1)
                e.pin(prev)
            else:
                timers[child] = e.call_after(delay, act, child, depth + 1)
        if rng.random() < 0.3 and timers:
            key = rng.choice(sorted(timers))
            timers.pop(key).cancel()

    for i in range(8):
        e.call_after(i * 0.1, act, f"root{i}", 0)
    e.run(until=50.0)
    return order, e._seq, e.events_processed, e.now, e.pending


@pytest.mark.parametrize("shards", [1, 2, 3, 7])
def test_random_workload_equivalence(shards):
    """Execution order, seq assignment, and terminal accounting match
    the single loop exactly for any shard count and pin pattern."""
    reference = _random_workload(Engine(), 0)
    got = _random_workload(ShardedEngine(shards=shards), shards)
    assert got == reference
