"""Tests for throughput monitors, annotations, and timelines."""

import pytest

from repro.sim.engine import Engine
from repro.sim.monitor import Annotations, ThroughputMonitor, Timeline


class TestThroughputMonitor:
    def test_counts_land_in_right_bucket(self):
        e = Engine()
        m = ThroughputMonitor(e, bucket_width=1.0)
        e.call_at(0.5, m.success)
        e.call_at(2.5, m.success)
        e.call_at(2.7, m.success)
        e.run()
        series = dict(m.series(0, 3))
        assert series[0.0] == 1.0
        assert series[1.0] == 0.0
        assert series[2.0] == 2.0

    def test_zero_buckets_explicit(self):
        e = Engine()
        m = ThroughputMonitor(e, bucket_width=1.0)
        e.call_at(4.2, m.success)
        e.run()
        series = m.series(0, 5)
        assert len(series) == 5
        assert [r for _t, r in series] == [0, 0, 0, 0, 1]

    def test_availability(self):
        e = Engine()
        m = ThroughputMonitor(e)
        for _ in range(9):
            m.success()
        m.failure()
        assert m.availability() == pytest.approx(0.9)

    def test_availability_no_requests_is_one(self):
        e = Engine()
        m = ThroughputMonitor(e)
        assert m.availability() == 1.0

    def test_mean_rate(self):
        e = Engine()
        m = ThroughputMonitor(e, bucket_width=1.0)
        e.call_at(0.5, m.success, 4)
        e.call_at(1.5, m.success, 2)
        e.run(until=10)
        assert m.mean_rate(0, 2) == pytest.approx(3.0)
        assert m.mean_rate(0, 1) == pytest.approx(4.0)

    def test_mean_rate_empty_window(self):
        e = Engine()
        m = ThroughputMonitor(e)
        assert m.mean_rate(5, 5) == 0.0

    def test_bucket_width_validation(self):
        e = Engine()
        with pytest.raises(ValueError):
            ThroughputMonitor(e, bucket_width=0)

    def test_failure_series(self):
        e = Engine()
        m = ThroughputMonitor(e, bucket_width=2.0)
        e.call_at(1.0, m.failure)
        e.call_at(1.5, m.failure)
        e.run(until=4)
        fs = dict(m.failure_series(0, 4))
        assert fs[0.0] == pytest.approx(1.0)  # 2 failures / 2s bucket


class TestAnnotations:
    def test_mark_records_time_and_label(self):
        e = Engine()
        a = Annotations(e)
        e.call_at(3.0, a.mark, "fault-injected", "link")
        e.run()
        entry = a.first("fault-injected")
        assert entry.time == 3.0
        assert entry.detail == "link"

    def test_first_and_last(self):
        e = Engine()
        a = Annotations(e)
        e.call_at(1.0, a.mark, "x")
        e.call_at(2.0, a.mark, "x")
        e.run()
        assert a.first("x").time == 1.0
        assert a.last("x").time == 2.0

    def test_missing_label_returns_none(self):
        e = Engine()
        a = Annotations(e)
        assert a.first("nothing") is None
        assert a.last("nothing") is None

    def test_times_filters_by_label(self):
        e = Engine()
        a = Annotations(e)
        e.call_at(1.0, a.mark, "a")
        e.call_at(2.0, a.mark, "b")
        e.call_at(3.0, a.mark, "a")
        e.run()
        assert a.times("a") == [1.0, 3.0]

    def test_len_and_iter(self):
        e = Engine()
        a = Annotations(e)
        a.mark("one")
        a.mark("two")
        assert len(a) == 2
        assert [x.label for x in a] == ["one", "two"]


class TestTimeline:
    def _tl(self):
        return Timeline(
            version="V",
            fault="f",
            bucket_width=1.0,
            series=[(0.0, 10.0), (1.0, 20.0), (2.0, 0.0), (3.0, 30.0)],
        )

    def test_rate_at(self):
        tl = self._tl()
        assert tl.rate_at(1.5) == 20.0
        assert tl.rate_at(99.0) == 0.0

    def test_mean_rate_over_window(self):
        tl = self._tl()
        assert tl.mean_rate(0, 2) == pytest.approx(15.0)
        assert tl.mean_rate(0, 4) == pytest.approx(15.0)

    def test_mean_rate_outside_series(self):
        tl = self._tl()
        assert tl.mean_rate(10, 20) == 0.0
