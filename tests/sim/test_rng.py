"""Tests for deterministic named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_same_stream_object():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(42).stream("clients")
    b = RngRegistry(42).stream("clients")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_differ():
    reg = RngRegistry(42)
    xs = [reg.stream("x").random() for _ in range(5)]
    ys = [reg.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_differ():
    a = RngRegistry(1).stream("s")
    b = RngRegistry(2).stream("s")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_derive_seed_stable():
    assert derive_seed(7, "foo") == derive_seed(7, "foo")
    assert derive_seed(7, "foo") != derive_seed(7, "bar")
    assert derive_seed(7, "foo") != derive_seed(8, "foo")


def test_fork_is_reproducible_and_independent():
    a = RngRegistry(5).fork("rep1")
    b = RngRegistry(5).fork("rep1")
    c = RngRegistry(5).fork("rep2")
    assert a.master_seed == b.master_seed
    assert a.master_seed != c.master_seed


def test_consumption_isolation():
    """Draining one stream must not perturb another."""
    reg1 = RngRegistry(9)
    reg2 = RngRegistry(9)
    for _ in range(100):
        reg1.stream("noisy").random()
    assert reg1.stream("quiet").random() == reg2.stream("quiet").random()
