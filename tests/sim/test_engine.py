"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim.engine import Engine, Event, SimulationError, StopSimulation


class TestScheduling:
    def test_call_after_runs_at_right_time(self):
        e = Engine()
        seen = []
        e.call_after(5.0, lambda: seen.append(e.now))
        e.run()
        assert seen == [5.0]

    def test_call_at_absolute_time(self):
        e = Engine()
        seen = []
        e.call_at(3.5, lambda: seen.append(e.now))
        e.run()
        assert seen == [3.5]

    def test_events_run_in_time_order(self):
        e = Engine()
        seen = []
        e.call_after(3.0, lambda: seen.append(3))
        e.call_after(1.0, lambda: seen.append(1))
        e.call_after(2.0, lambda: seen.append(2))
        e.run()
        assert seen == [1, 2, 3]

    def test_same_time_fifo_order(self):
        e = Engine()
        seen = []
        for i in range(10):
            e.call_after(1.0, lambda i=i: seen.append(i))
        e.run()
        assert seen == list(range(10))

    def test_callback_args_passed(self):
        e = Engine()
        seen = []
        e.call_after(1.0, seen.append, 42)
        e.run()
        assert seen == [42]

    def test_call_soon_runs_at_current_time(self):
        e = Engine()
        seen = []

        def outer():
            e.call_soon(lambda: seen.append(e.now))

        e.call_after(2.0, outer)
        e.run()
        assert seen == [2.0]

    def test_scheduling_in_past_rejected(self):
        e = Engine()
        e.call_after(5.0, lambda: None)
        e.run()
        with pytest.raises(SimulationError):
            e.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        e = Engine()
        with pytest.raises(SimulationError):
            e.call_after(-1.0, lambda: None)

    def test_nan_time_rejected(self):
        e = Engine()
        with pytest.raises(SimulationError):
            e.call_at(float("nan"), lambda: None)


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        e = Engine()
        e.call_after(10.0, lambda: None)
        e.run(until=5.0)
        assert e.now == 5.0
        assert e.pending == 1

    def test_run_until_resumes_where_left(self):
        e = Engine()
        seen = []
        e.call_after(10.0, lambda: seen.append(e.now))
        e.run(until=5.0)
        e.run(until=20.0)
        assert seen == [10.0]
        assert e.now == 20.0

    def test_run_without_bound_drains_heap(self):
        e = Engine()
        for i in range(5):
            e.call_after(float(i + 1), lambda: None)
        e.run()
        assert e.pending == 0
        assert e.now == 5.0

    def test_step_executes_single_event(self):
        e = Engine()
        seen = []
        e.call_after(1.0, lambda: seen.append("a"))
        e.call_after(2.0, lambda: seen.append("b"))
        assert e.step()
        assert seen == ["a"]
        assert e.step()
        assert not e.step()

    def test_stop_simulation_halts_run(self):
        e = Engine()
        seen = []

        def stopper():
            raise StopSimulation

        e.call_after(1.0, seen.append, 1)
        e.call_after(2.0, stopper)
        e.call_after(3.0, seen.append, 3)
        e.run()
        assert seen == [1]
        assert e.now == 2.0

    def test_engine_not_reentrant(self):
        e = Engine()

        def nested():
            e.run()

        e.call_after(1.0, nested)
        with pytest.raises(SimulationError):
            e.run()

    def test_events_processed_counter(self):
        e = Engine()
        for i in range(7):
            e.call_after(1.0, lambda: None)
        e.run()
        assert e.events_processed == 7


class TestTimers:
    def test_cancel_prevents_execution(self):
        e = Engine()
        seen = []
        t = e.call_after(1.0, lambda: seen.append(1))
        t.cancel()
        e.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        e = Engine()
        t = e.call_after(1.0, lambda: None)
        t.cancel()
        t.cancel()
        e.run()

    def test_active_reflects_lifecycle(self):
        e = Engine()
        t = e.call_after(1.0, lambda: None)
        assert t.active
        e.run()
        assert not t.active  # fired

    def test_cancelled_timer_not_active(self):
        e = Engine()
        t = e.call_after(1.0, lambda: None)
        t.cancel()
        assert not t.active

    def test_peek_skips_cancelled(self):
        e = Engine()
        t1 = e.call_after(1.0, lambda: None)
        e.call_after(2.0, lambda: None)
        t1.cancel()
        assert e.peek() == 2.0

    def test_peek_empty_heap_is_inf(self):
        e = Engine()
        assert e.peek() == math.inf

    def test_pending_excludes_cancelled(self):
        e = Engine()
        t1 = e.call_after(1.0, lambda: None)
        e.call_after(2.0, lambda: None)
        t1.cancel()
        assert e.pending == 1


class TestEvent:
    def test_succeed_delivers_value(self):
        e = Engine()
        ev = e.event()
        seen = []
        ev.add_callback(lambda event: seen.append(event.value))
        ev.succeed(99)
        assert seen == [99]

    def test_callback_after_trigger_fires_immediately(self):
        e = Engine()
        ev = e.event()
        ev.succeed("x")
        seen = []
        ev.add_callback(lambda event: seen.append(event.value))
        assert seen == ["x"]

    def test_fail_carries_exception(self):
        e = Engine()
        ev = e.event()
        ev.fail(ValueError("boom"))
        assert ev.triggered and not ev.ok
        assert isinstance(ev.value, ValueError)

    def test_double_trigger_rejected(self):
        e = Engine()
        ev = e.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        e = Engine()
        ev = e.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_timeout_event(self):
        e = Engine()
        ev = e.timeout(4.0, value="done")
        seen = []
        ev.add_callback(lambda event: seen.append((e.now, event.value)))
        e.run()
        assert seen == [(4.0, "done")]


class TestHotLoopInternals:
    """White-box checks of the hot-loop machinery: the timer freelist,
    the head slot, and incremental tombstone compaction."""

    def test_timer_objects_are_recycled(self):
        e = Engine()
        fired = []
        t1 = e.call_after(0.1, lambda: fired.append(1))
        e.run()
        t2 = e.call_after(0.1, lambda: fired.append(2))
        assert t2 is t1  # fired timers return through the freelist
        e.run()
        assert fired == [1, 2]

    def test_cancelled_timers_are_recycled(self):
        e = Engine()
        t1 = e.call_after(1.0, lambda: None)
        t1.cancel()
        e.run()  # compaction reclaims the tombstone
        t2 = e.call_after(1.0, lambda: None)
        assert t2 is t1

    def test_ordering_with_head_slot_backfill(self):
        """A later schedule that precedes the cached next event must run
        first (the head slot only ever holds the globally earliest entry)."""
        e = Engine()
        order = []
        e.call_after(2.0, lambda: order.append("late"))
        e.call_after(1.0, lambda: order.append("early"))
        e.call_after(0.5, lambda: order.append("earliest"))
        e.run()
        assert order == ["earliest", "early", "late"]

    def test_mass_cancellation_keeps_heap_bounded(self):
        e = Engine()
        keeper = []
        for _ in range(50):
            timers = [e.call_after(10.0, lambda: None) for _ in range(200)]
            for t in timers:
                t.cancel()
            keeper.append(e.call_after(5.0, lambda: None))
        # Incremental compaction runs at cancel time: tombstones cannot
        # accumulate past the live population by more than a constant
        # factor.
        assert len(e._heap) < 2_000
        assert e.pending == 50

    def test_pending_is_exact_after_mixed_fire_and_cancel(self):
        e = Engine()
        fired = []
        live = [e.call_after(float(i + 1), lambda: fired.append(1)) for i in range(10)]
        for t in live[::3]:
            t.cancel()
        e.run(until=5.0)
        expected = sum(
            1
            for i, t in enumerate(live)
            if i % 3 != 0 and float(i + 1) > 5.0
        )
        assert e.pending == expected

    def test_events_processed_excludes_cancelled(self):
        e = Engine()
        t1 = e.call_after(1.0, lambda: None)
        e.call_after(2.0, lambda: None)
        t1.cancel()
        e.run()
        assert e.events_processed == 1
