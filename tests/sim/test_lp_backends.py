"""Parallel-backend runs must be byte-identical to the serial merge.

The ``--lp-backend`` analogue of the PR 8 shard-equivalence suite: every
observable — state digests, monitor series, campaign cell payloads,
global id streams, snapshot continuations — must be a pure function of
(version, settings, seed), independent of whether the sharded engine
executes its merge serially, on per-LP worker threads, or against
per-LP OS worker processes exchanging EOT/null/frame records over
pipes.  Plus the failure surface: a worker killed mid-run must be a
clean :class:`LpWorkerError` on the campaign cell, never a hang.
"""

import dataclasses

import pytest

from repro.experiments.runner import CampaignRunner, run_campaign
from repro.experiments.settings import Phase1Settings
from repro.experiments.store import MemoryStore, payload_fingerprint
from repro.faults.spec import FaultKind
from repro.obs.profiler import FlightRecorder
from repro.press.cluster import SMOKE_SCALE, PressCluster
from repro.press.config import ALL_VERSIONS, TCP_PRESS, VIA_PRESS_5
from repro.sim import ids, lpexec, snapshot
from repro.sim.lp import ShardedEngine
from repro.sim.lpexec import BACKENDS, LpWorkerError

PARALLEL = [b for b in BACKENDS if b != "serial"]


def _cluster(
    config,
    shards,
    backend="serial",
    n_nodes=4,
    seed=3,
    until=20.0,
    profile=False,
):
    ids.reset_global_ids()
    c = PressCluster(
        config,
        n_nodes=n_nodes,
        scale=SMOKE_SCALE,
        seed=seed,
        shards=shards,
        lp_backend=backend,
    )
    if profile:
        c.engine.profiler = FlightRecorder()
    c.start()
    c.run_until(until)
    return c


def _observables(c, until=20.0):
    return (
        snapshot.state_digest(c),
        c.engine.events_processed,
        c.engine.snapshot_state(),
        c.monitor.series(0.0, until),
        repr(ids.global_id_state()),
    )


@pytest.mark.parametrize("backend", PARALLEL)
@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("version", ["TCP-PRESS", "VIA-PRESS-5"])
def test_cluster_observables_backend_invariant(version, shards, backend):
    config = ALL_VERSIONS[version]
    reference = _observables(_cluster(config, shards=shards))
    got = _observables(_cluster(config, shards=shards, backend=backend))
    assert got == reference


@pytest.mark.parametrize("backend", PARALLEL)
def test_profiled_backend_matches_unprofiled_serial(backend):
    """The flight recorder stays a pure observer inside the workers."""
    reference = _observables(_cluster(VIA_PRESS_5, shards=4))
    got = _observables(
        _cluster(VIA_PRESS_5, shards=4, backend=backend, profile=True)
    )
    assert got == reference


@pytest.mark.parametrize("backend", PARALLEL)
def test_worker_clocks_measured_inside_workers(backend):
    """lp_stats() carries real per-worker exec/idle/blocked wall clocks
    and an imbalance index computed from them."""
    c = _cluster(VIA_PRESS_5, shards=4, backend=backend)
    stats = c.engine.lp_stats()
    assert stats["backend"] == backend
    assert len(stats["worker_exec_s"]) == 4
    assert sum(stats["worker_exec_s"]) > 0.0
    # Conservative synchronization means somebody waited on a bound.
    assert (
        sum(stats["worker_blocked_s"]) + sum(stats["worker_idle_s"]) > 0.0
    )
    assert stats["worker_imbalance"] is not None
    assert stats["worker_imbalance"] >= 1.0


def test_serial_backend_has_no_worker_clocks():
    c = _cluster(VIA_PRESS_5, shards=4)
    stats = c.engine.lp_stats()
    assert stats["backend"] == "serial"
    assert sum(stats["worker_exec_s"]) == 0.0
    assert stats["worker_imbalance"] is None


def test_imbalance_none_before_any_event():
    """Zero-event LPs: the index is undefined (None), never inf/raise."""
    eng = ShardedEngine(shards=3)
    stats = eng.lp_stats()
    assert stats["imbalance"] is None
    assert stats["worker_imbalance"] is None


def test_backend_validated():
    with pytest.raises(ValueError):
        ShardedEngine(shards=2, backend="fibers")
    with pytest.raises(ValueError):
        Phase1Settings(lp_backend="fibers")


def test_parallel_backend_runs_even_at_one_shard():
    """--lp-backend processes with --shards 1 still builds the sharded
    engine (one LP, one worker) rather than silently going serial."""
    c = PressCluster(
        TCP_PRESS, n_nodes=4, scale=SMOKE_SCALE, seed=1,
        shards=1, lp_backend="processes",
    )
    assert isinstance(c.engine, ShardedEngine)
    assert c.engine.backend == "processes"


@pytest.mark.parametrize("backend", PARALLEL)
def test_campaign_fault_cells_backend_invariant(backend):
    """Full campaign cells through the runner's warm-start machinery
    fingerprint identically across backends."""
    base = Phase1Settings(
        scale=SMOKE_SCALE,
        seed=11,
        warm=10.0,
        fault_at=30.0,
        fault_duration=20.0,
        post_recovery=20.0,
        tail=10.0,
        replications=1,
        shards=3,
    )
    faults = [FaultKind.NODE_CRASH]
    results = {}
    for lp_backend in ("serial", backend):
        settings = dataclasses.replace(base, lp_backend=lp_backend)
        store = MemoryStore()
        run_campaign(
            settings,
            versions=["VIA-PRESS-5"],
            faults=faults,
            store=store,
            use_cache=True,
        )
        results[lp_backend] = {
            (key.version, key.fault, key.seed, key.rep): payload_fingerprint(
                payload
            )
            for key, payload in store._cells.items()
        }
    assert results["serial"] == results[backend]
    assert len(results["serial"]) == 2  # baseline + 1 fault


@pytest.mark.parametrize("backend", PARALLEL)
def test_backend_snapshot_round_trip(backend):
    """Capture mid-run, restore, continue under the same backend —
    workers rebuild their LP-slice mirrors from the restored queues and
    the continuation matches the uninterrupted serial run."""
    c = _cluster(VIA_PRESS_5, shards=4, backend=backend)
    blob = snapshot.capture(c)
    c2 = snapshot.restore(blob)
    assert isinstance(c2.engine, ShardedEngine)
    assert c2.engine.backend == backend
    assert snapshot.state_digest(c2) == snapshot.state_digest(c)

    c2.run_until(45.0)
    serial = _cluster(VIA_PRESS_5, shards=4, until=45.0)
    assert snapshot.state_digest(c2) == snapshot.state_digest(serial)
    assert c2.monitor.series(0.0, 45.0) == serial.monitor.series(0.0, 45.0)


def test_killed_worker_raises_clean_error_not_hang():
    """Terminate one LP worker mid-run: the run must fail promptly with
    LpWorkerError, not deadlock on a dead pipe."""
    lpexec._TEST_KILL_BEFORE_FLUSH = (1, 2)
    try:
        with pytest.raises(LpWorkerError, match="died"):
            _cluster(VIA_PRESS_5, shards=4, backend="processes")
    finally:
        lpexec._TEST_KILL_BEFORE_FLUSH = None


def test_killed_worker_is_a_clean_campaign_cell_error():
    """The same failure through a campaign cell: the campaign errors
    out cleanly instead of hanging the wave."""
    settings = Phase1Settings(
        scale=SMOKE_SCALE,
        seed=11,
        warm=10.0,
        fault_at=30.0,
        fault_duration=20.0,
        post_recovery=20.0,
        tail=10.0,
        replications=1,
        shards=4,
        lp_backend="processes",
    )
    lpexec._TEST_KILL_BEFORE_FLUSH = (0, 1)
    try:
        with pytest.raises(LpWorkerError, match="campaign cell"):
            run_campaign(
                settings,
                versions=["VIA-PRESS-5"],
                faults=[],
                store=MemoryStore(),
                use_cache=False,
            )
    finally:
        lpexec._TEST_KILL_BEFORE_FLUSH = None


def test_mirror_divergence_detected_at_finish():
    """The end-of-run verification really cross-checks the mirrors: a
    worker whose replayed queue disagrees with the coordinator's is a
    protocol error, not a silent pass."""
    c = PressCluster(
        VIA_PRESS_5, n_nodes=4, scale=SMOKE_SCALE, seed=3,
        shards=2, lp_backend="processes",
    )
    c.start()
    original = lpexec._queue_keys

    def corrupted(engine, q):
        keys = original(engine, q)
        if q.lp == 1:
            keys = keys + [(-1.0, 10 ** 9)]  # a key the coordinator lacks
        return keys

    lpexec._queue_keys = corrupted
    try:
        with pytest.raises(LpWorkerError, match="diverged|bound"):
            c.run_until(20.0)
    finally:
        lpexec._queue_keys = original


def test_processes_jobs_capped_against_worker_oversubscription():
    """--jobs x --lp-backend processes caps the campaign pool so cells
    times per-cell LP workers cannot oversubscribe the host."""
    settings = Phase1Settings(shards=4, lp_backend="processes")
    runner = CampaignRunner(settings, jobs=64)
    import os

    per_cell = 1 + 4
    expected = max(1, (os.cpu_count() or 1) // per_cell)
    assert runner.jobs == expected
    assert runner._jobs_notice is not None
    assert "oversubscribe" in runner._jobs_notice


def test_serial_jobs_not_capped():
    settings = Phase1Settings(shards=4)
    runner = CampaignRunner(settings, jobs=8)
    assert runner.jobs == 8
    assert runner._jobs_notice is None


def test_lp_backend_in_sim_key():
    """Like --shards: a backend-verification run must actually run, so
    the backend is part of the cell cache identity."""
    a = Phase1Settings(lp_backend="serial").sim_key()
    b = Phase1Settings(lp_backend="processes").sim_key()
    assert a != b
