"""Property-based tests: LP partitioning preserves global event order.

Hypothesis drives two generators the hand-written equivalence cases
cannot cover: arbitrary (topology, partition) pairs — any way of
assigning simulated nodes to logical processes — and arbitrary
cross-node event cascades, including same-timestamp ties across LPs,
zero-delay self-messages, and cancellations racing deliveries.  The
property is always the same: the sharded engine fires exactly the event
sequence the single loop fires.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.lp import ShardedEngine, partition_nodes

delays = st.sampled_from([0.0, 1e-6, 1e-3, 0.25, 1.0, 5.0])

#: A message: (src_node, dst_node, delay_choice, fanout).
messages = st.tuples(
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=7),
    delays,
    st.integers(min_value=0, max_value=2),
)


def _run_topology(engine, n_nodes, partition, initial, cascade_depth):
    """Replay a message cascade on ``engine``; returns the firing order.

    Each simulated node is a callback that relays to the next scripted
    destinations; on a sharded engine the relay pins the destination's
    LP exactly as the fabric pins frame deliveries.
    """
    sharded = isinstance(engine, ShardedEngine)
    order = []
    script = list(initial)

    def deliver(msg_idx, src, dst, hop):
        order.append((engine.now, msg_idx, src, dst, hop))
        if hop >= cascade_depth or not script:
            return
        nxt_src, nxt_dst, delay, fanout = script[msg_idx % len(script)]
        for k in range(fanout):
            target = (nxt_dst + k) % n_nodes
            if sharded:
                prev = engine.pin(partition[f"n{target}"])
                engine.call_after(
                    delay, deliver, msg_idx + k + 1, dst, target, hop + 1
                )
                engine.pin(prev)
            else:
                engine.call_after(
                    delay, deliver, msg_idx + k + 1, dst, target, hop + 1
                )

    for i, (src, dst, delay, _fanout) in enumerate(initial):
        src %= n_nodes
        dst %= n_nodes
        if sharded:
            prev = engine.pin(partition[f"n{src}"])
            engine.call_after(delay, deliver, i, src, dst, 0)
            engine.pin(prev)
        else:
            engine.call_after(delay, deliver, i, src, dst, 0)
    engine.run(until=100.0)
    return order, engine._seq, engine.events_processed, engine.now


@settings(max_examples=60, deadline=None)
@given(
    n_nodes=st.integers(min_value=2, max_value=8),
    shards=st.integers(min_value=1, max_value=8),
    initial=st.lists(messages, min_size=1, max_size=12),
    cascade_depth=st.integers(min_value=0, max_value=4),
)
def test_any_partition_preserves_global_event_order(
    n_nodes, shards, initial, cascade_depth
):
    node_ids = [f"n{i}" for i in range(n_nodes)]
    partition = partition_nodes(node_ids, min(shards, n_nodes))
    reference = _run_topology(Engine(), n_nodes, partition, initial, cascade_depth)
    engine = ShardedEngine(shards=min(shards, n_nodes))
    got = _run_topology(engine, n_nodes, partition, initial, cascade_depth)
    assert got == reference


@settings(max_examples=40, deadline=None)
@given(
    shards=st.integers(min_value=2, max_value=6),
    ts=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    lps=st.data(),
)
def test_ties_across_random_lps_fire_in_scheduling_order(shards, ts, lps):
    """Same-timestamp events spread over arbitrary LPs still fire in
    global scheduling order (the determinism contract ties break on)."""
    e = ShardedEngine(shards=shards)
    fired = []
    for i, t in enumerate(ts):
        lp = lps.draw(st.integers(min_value=0, max_value=shards - 1))
        prev = e.pin(lp)
        e.call_at(t, lambda i=i: fired.append(i))
        e.pin(prev)
    e.run()
    expected = [i for i, _ in sorted(enumerate(ts), key=lambda p: (p[1], p[0]))]
    assert fired == expected


@settings(max_examples=40, deadline=None)
@given(
    shards=st.integers(min_value=2, max_value=6),
    ts=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=2,
        max_size=30,
    ),
    data=st.data(),
)
def test_cancellations_on_random_lps_are_inert(shards, ts, data):
    e = ShardedEngine(shards=shards)
    fired = []
    timers = []
    for i, t in enumerate(ts):
        prev = e.pin(data.draw(st.integers(min_value=0, max_value=shards - 1)))
        timers.append(e.call_at(t, lambda i=i: fired.append(i)))
        e.pin(prev)
    cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(ts) - 1))
    )
    for i in cancel:
        timers[i].cancel()
    e.run()
    assert set(fired) == set(range(len(ts))) - cancel
    assert e.pending == 0
    assert e.peek() == math.inf
