"""Property tests: named RNG streams round-trip through snapshots.

The warm-start contract leans entirely on this: a restored
:class:`~repro.sim.rng.RngRegistry` must replay *exactly* the draws the
original produced after the capture point — for every named stream, for
every draw kind (uniform, gaussian with its carried spare, exponential,
integer), and for fork-derived child registries mid-stream.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import snapshot
from repro.sim.rng import RngRegistry, derive_seed

STREAMS = ("clients", "trace", "faults", "loss", "jitter")

#: Draw kinds that exercise distinct Mersenne-Twister consumption
#: patterns (gauss carries a spare sample between calls).
DRAWS = {
    "random": lambda rng: rng.random(),
    "gauss": lambda rng: rng.gauss(0.0, 1.0),
    "expovariate": lambda rng: rng.expovariate(1.0),
    "randrange": lambda rng: rng.randrange(1 << 30),
}

ops = st.lists(
    st.tuples(st.sampled_from(STREAMS), st.sampled_from(sorted(DRAWS))),
    max_size=40,
)


def _apply(registry: RngRegistry, script) -> list:
    return [DRAWS[kind](registry.stream(name)) for name, kind in script]


@given(seed=st.integers(0, 2**32), warmup=ops, after=ops)
def test_streams_resume_identically_after_restore(seed, warmup, after):
    reg = RngRegistry(seed)
    _apply(reg, warmup)
    blob = snapshot.capture(reg)
    ahead = _apply(reg, after)
    restored = snapshot.restore(blob)
    assert _apply(restored, after) == ahead
    assert restored.snapshot_state() == reg.snapshot_state()


@given(
    seed=st.integers(0, 2**32),
    rep=st.integers(0, 9),
    warmup=ops,
    after=ops,
)
def test_forked_substreams_resume_mid_stream(seed, rep, warmup, after):
    """A child registry derived with ``fork`` is part of the captured
    graph: its streams resume from their consumed positions, not from
    the derived seed's origin."""
    parent = RngRegistry(seed)
    child = parent.fork(f"rep{rep}")
    _apply(parent, warmup)
    _apply(child, warmup)
    blob = snapshot.capture((parent, child))
    ahead = (_apply(parent, after), _apply(child, after))
    parent2, child2 = snapshot.restore(blob)
    assert (_apply(parent2, after), _apply(child2, after)) == ahead
    assert child2.master_seed == derive_seed(seed, f"rep{rep}")


@given(seed=st.integers(0, 2**32), warmup=ops, k=st.integers(1, 16))
def test_streams_created_after_restore_match_the_original(seed, warmup, k):
    """The registry's master seed survives the round trip: a stream
    first touched *after* restore produces the same draws as one first
    touched after capture on the original."""
    reg = RngRegistry(seed)
    _apply(reg, warmup)
    restored = snapshot.restore(snapshot.capture(reg))
    fresh = [reg.stream("latecomer").random() for _ in range(k)]
    assert [restored.stream("latecomer").random() for _ in range(k)] == fresh


@given(seed=st.integers(0, 2**32), warmup=ops)
def test_restores_are_independent_copies(seed, warmup):
    """Two restores of one blob diverge freely: draining one stream
    never moves the other copy's position."""
    reg = RngRegistry(seed)
    _apply(reg, warmup)
    blob = snapshot.capture(reg)
    a, b = snapshot.restore(blob), snapshot.restore(blob)
    first = a.stream("clients").random()
    for _ in range(7):
        a.stream("clients").random()
    assert b.stream("clients").random() == first
