"""Sharded runs must be byte-identical to single-loop runs.

This is the LP-sharding analogue of the fastpath equivalence suite: the
``--shards N`` knob mirrors ``--no-fastpath`` in that every observable
output — component state digests, monitor series, campaign cell
payloads, global id streams, warm checkpoints' forward trajectories —
must be a pure function of (version, settings, seed) and independent of
the shard count.
"""

import dataclasses

import pytest

from repro.experiments.runner import run_campaign
from repro.experiments.settings import Phase1Settings
from repro.experiments.store import MemoryStore, payload_fingerprint
from repro.faults.spec import FaultKind
from repro.press.cluster import SMOKE_SCALE, PressCluster
from repro.press.config import ALL_VERSIONS, TCP_PRESS, VIA_PRESS_5
from repro.sim import ids, snapshot
from repro.sim.lp import ShardedEngine


def _cluster(config, shards, n_nodes=4, seed=3, until=20.0):
    ids.reset_global_ids()
    c = PressCluster(
        config, n_nodes=n_nodes, scale=SMOKE_SCALE, seed=seed, shards=shards
    )
    c.start()
    c.run_until(until)
    return c


def _observables(c, until=20.0):
    return (
        snapshot.state_digest(c),
        c.engine.events_processed,
        c.engine.snapshot_state(),
        c.monitor.series(0.0, until),
        repr(ids.global_id_state()),
    )


@pytest.mark.parametrize("version", ["TCP-PRESS", "VIA-PRESS-5"])
@pytest.mark.parametrize("shards", [2, 4])
def test_cluster_observables_shard_invariant(version, shards):
    config = ALL_VERSIONS[version]
    reference = _observables(_cluster(config, shards=1))
    got = _observables(_cluster(config, shards=shards))
    assert got == reference


def test_id_streams_shard_invariant():
    """Satellite: repro.sim.ids allocation is per-LP deterministic —
    the id counters advance identically for every shard count, because
    allocation order equals execution order and execution order is
    exactly preserved."""
    states = []
    for shards in (1, 2, 4):
        _cluster(TCP_PRESS, shards=shards)
        states.append(repr(ids.global_id_state()))
    assert states[0] == states[1] == states[2]


def test_sharded_engine_is_actually_sharded():
    c = _cluster(VIA_PRESS_5, shards=4)
    assert isinstance(c.engine, ShardedEngine)
    stats = c.engine.lp_stats()
    assert stats["shards"] == 4
    # The partition must really be exercised: multiple LPs burst, and
    # cross-LP traffic (frame deliveries) flows on the channels.
    assert stats["bursts"] > 1
    assert stats["cross_lp_events"] > 0
    assert stats["channel_clocks"]


def test_shards_capped_at_n_nodes():
    c = PressCluster(TCP_PRESS, n_nodes=4, scale=SMOKE_SCALE, seed=1, shards=64)
    assert c.shards == 4


def test_campaign_fault_cells_shard_invariant():
    """Full campaign cells — baseline and fault injections, through the
    runner's warm-start machinery — fingerprint identically."""
    base = Phase1Settings(
        scale=SMOKE_SCALE,
        seed=11,
        warm=10.0,
        fault_at=30.0,
        fault_duration=20.0,
        post_recovery=20.0,
        tail=10.0,
        replications=1,
    )
    faults = [FaultKind.LINK_DOWN, FaultKind.NODE_CRASH]
    results = {}
    for shards in (1, 3):
        settings = dataclasses.replace(base, shards=shards)
        store = MemoryStore()
        run_campaign(
            settings,
            versions=["TCP-PRESS", "VIA-PRESS-5"],
            faults=faults,
            store=store,
            use_cache=True,
        )
        results[shards] = {
            (key.version, key.fault, key.seed, key.rep): payload_fingerprint(
                payload
            )
            for key, payload in store._cells.items()
        }
    assert results[1] == results[3]
    assert len(results[1]) == 6  # 2 versions x (baseline + 2 faults)


def test_sharded_cluster_snapshot_round_trip():
    """Satellite: capture a sharded cluster mid-run, restore, continue —
    bit-identical to both the uninterrupted sharded run and the
    single-loop run."""
    c = _cluster(VIA_PRESS_5, shards=4)
    blob = snapshot.capture(c)
    c2 = snapshot.restore(blob)
    assert isinstance(c2.engine, ShardedEngine)
    assert c2.engine.shard_map == c.engine.shard_map
    assert snapshot.state_digest(c2) == snapshot.state_digest(c)

    c.run_until(45.0)
    c2.run_until(45.0)
    assert c2.engine.snapshot_state() == c.engine.snapshot_state()
    assert snapshot.state_digest(c2) == snapshot.state_digest(c)
    assert c2.monitor.series(0.0, 45.0) == c.monitor.series(0.0, 45.0)

    # The restored sharded continuation must also match a single-loop
    # cluster that ran 0 -> 45 uninterrupted.
    single = _cluster(VIA_PRESS_5, shards=1, until=45.0)
    assert snapshot.state_digest(c2) == snapshot.state_digest(single)


def test_restored_sharded_engine_keeps_link_affinity():
    """Restore must preserve the delivery pinning: links still carry
    their owner's LP and cross-LP traffic keeps flowing."""
    c = _cluster(TCP_PRESS, shards=2)
    c2 = snapshot.restore(snapshot.capture(c))
    for node_id, link in c2.fabric.links.items():
        assert link._lp == c2.engine.shard_of(node_id)
    before = c2.engine.lp_stats()["cross_lp_events"]
    c2.run_until(30.0)
    assert c2.engine.lp_stats()["cross_lp_events"] > before
