"""Property-based tests for the simulation core (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.resources import Resource, Store, TokenBucket


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_events_always_execute_in_nondecreasing_time(delays):
    e = Engine()
    times = []
    for d in delays:
        e.call_after(d, lambda: times.append(e.now))
    e.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_cancelled_timers_never_fire(items):
    e = Engine()
    fired = []
    timers = []
    for i, (delay, cancel) in enumerate(items):
        timers.append((e.call_after(delay, lambda i=i: fired.append(i)), cancel))
    for timer, cancel in timers:
        if cancel:
            timer.cancel()
    e.run()
    expected = {i for i, (_d, cancel) in enumerate(items) if not cancel}
    assert set(fired) == expected


@given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=60))
def test_resource_never_exceeds_capacity(capacity, n_requests):
    e = Engine()
    r = Resource(e, capacity=capacity)
    in_flight = {"n": 0, "max": 0}

    def hold(_ev):
        in_flight["n"] += 1
        in_flight["max"] = max(in_flight["max"], in_flight["n"])
        e.call_after(1.0, release)

    def release():
        in_flight["n"] -= 1
        r.release()

    for i in range(n_requests):
        e.call_after(i * 0.1, lambda: r.acquire().add_callback(hold))
    e.run()
    assert in_flight["max"] <= capacity
    assert in_flight["n"] == 0
    assert r.in_use == 0


@given(st.lists(st.integers(), max_size=50))
def test_store_preserves_fifo_order(items):
    e = Engine()
    s = Store(e)
    for item in items:
        s.put(item)
    out = [s.get().value for _ in range(len(items))]
    assert out == items


@given(
    st.integers(min_value=0, max_value=20),
    st.lists(st.sampled_from(["take", "give"]), max_size=80),
)
def test_token_bucket_conservation(initial, ops):
    """Tokens never go negative and never exceed capacity."""
    e = Engine()
    b = TokenBucket(e, tokens=initial)
    outstanding = 0
    for op in ops:
        if op == "take":
            if b.try_take():
                outstanding += 1
        else:
            if outstanding > 0:
                outstanding -= 1
                b.give()
        assert 0 <= b.tokens <= b.capacity


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=2**32), st.text(min_size=0, max_size=20))
def test_rng_streams_deterministic(seed, name):
    from repro.sim.rng import RngRegistry

    a = RngRegistry(seed).stream(name)
    b = RngRegistry(seed).stream(name)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]
