"""Tests for generator-coroutine processes."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Interrupted, all_of, any_of, spawn


def test_sleep_advances_time():
    e = Engine()
    seen = []

    def proc():
        yield 2.0
        seen.append(e.now)
        yield 3.0
        seen.append(e.now)

    spawn(e, proc())
    e.run()
    assert seen == [2.0, 5.0]


def test_return_value_captured():
    e = Engine()

    def proc():
        yield 1.0
        return "result"

    p = spawn(e, proc())
    e.run()
    assert p.triggered and p.ok
    assert p.value == "result"


def test_wait_on_event_receives_value():
    e = Engine()
    ev = e.event()
    seen = []

    def proc():
        got = yield ev
        seen.append(got)

    spawn(e, proc())
    e.call_after(3.0, ev.succeed, "hello")
    e.run()
    assert seen == ["hello"]


def test_failed_event_raises_in_process():
    e = Engine()
    ev = e.event()
    seen = []

    def proc():
        try:
            yield ev
        except ValueError as err:
            seen.append(str(err))

    spawn(e, proc())
    e.call_after(1.0, ev.fail, ValueError("bad"))
    e.run()
    assert seen == ["bad"]


def test_process_waits_on_process():
    e = Engine()

    def child():
        yield 5.0
        return 42

    def parent():
        value = yield spawn(e, child())
        return value * 2

    p = spawn(e, parent())
    e.run()
    assert p.value == 84


def test_exception_propagates_to_done_event():
    e = Engine()

    def proc():
        yield 1.0
        raise RuntimeError("kaput")

    p = spawn(e, proc())
    e.run()
    assert p.triggered and not p.ok
    assert isinstance(p.value, RuntimeError)


def test_yield_none_is_scheduler_turn():
    e = Engine()
    seen = []

    def proc():
        yield None
        seen.append(e.now)

    spawn(e, proc())
    e.run()
    assert seen == [0.0]


def test_negative_sleep_fails_process():
    e = Engine()

    def proc():
        yield -1.0

    p = spawn(e, proc())
    e.run()
    assert p.triggered and not p.ok
    assert isinstance(p.value, SimulationError)


def test_yield_garbage_fails_process():
    e = Engine()

    def proc():
        yield "nonsense"

    p = spawn(e, proc())
    e.run()
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_interrupt_wakes_sleeping_process():
    e = Engine()
    seen = []

    def proc():
        try:
            yield 100.0
        except Interrupted as intr:
            seen.append((e.now, intr.cause))

    p = spawn(e, proc())
    e.call_after(2.0, p.interrupt, "wake up")
    e.run()
    assert seen == [(2.0, "wake up")]


def test_interrupt_dead_process_is_noop():
    e = Engine()

    def proc():
        yield 1.0

    p = spawn(e, proc())
    e.run()
    p.interrupt()  # should not raise
    e.run()


def test_uncaught_interrupt_fails_process():
    e = Engine()

    def proc():
        yield 100.0

    p = spawn(e, proc())
    e.call_after(1.0, p.interrupt)
    e.run()
    assert not p.ok
    assert isinstance(p.value, Interrupted)


def test_stale_wakeup_after_interrupt_ignored():
    e = Engine()
    wakeups = []

    def proc():
        try:
            yield 10.0
        except Interrupted:
            pass
        yield 5.0
        wakeups.append(e.now)

    p = spawn(e, proc())
    e.call_after(1.0, p.interrupt)
    e.run()
    # Interrupted at 1.0, then sleeps 5 -> resumes once at 6.0; the stale
    # 10.0 wake-up must not resume it a second time.
    assert wakeups == [6.0]
    assert p.ok


def test_all_of_collects_values_in_order():
    e = Engine()

    def make(delay, value):
        def proc():
            yield delay
            return value

        return spawn(e, proc())

    procs = [make(3.0, "a"), make(1.0, "b"), make(2.0, "c")]
    done = all_of(e, procs)
    seen = []
    done.add_callback(lambda ev: seen.append((e.now, ev.value)))
    e.run()
    assert seen == [(3.0, ["a", "b", "c"])]


def test_all_of_empty_succeeds_immediately():
    e = Engine()
    done = all_of(e, [])
    assert done.triggered and done.value == []


def test_all_of_fails_fast():
    e = Engine()

    def failing():
        yield 1.0
        raise ValueError("x")

    def slow():
        yield 10.0

    done = all_of(e, [spawn(e, failing()), spawn(e, slow())])
    seen = []
    done.add_callback(lambda ev: seen.append((e.now, ev.ok)))
    e.run()
    assert seen == [(1.0, False)]


def test_any_of_returns_first():
    e = Engine()

    def make(delay, value):
        def proc():
            yield delay
            return value

        return spawn(e, proc())

    done = any_of(e, [make(5.0, "slow"), make(2.0, "fast")])
    seen = []
    done.add_callback(lambda ev: seen.append(ev.value))
    e.run()
    assert seen == [(1, "fast")]


def test_any_of_requires_waitables():
    e = Engine()
    with pytest.raises(SimulationError):
        any_of(e, [])
