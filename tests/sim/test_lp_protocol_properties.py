"""Property suite for the parallel-LP worker message protocol.

The contract under test (see :mod:`repro.sim.lpexec`): arbitrary
interleavings of the protocol messages N workers exchange — EOT
announcements (mirror heads), null messages (mid-burst bound
lowerings caused by cross-LP frames), and frame deliveries (schedule
records) — must reduce to exactly the total order the serial merge
produces over the same events.  The transports are exercised end-to-end
by ``test_lp_backends``; here hypothesis drives the pure protocol core
(:class:`LpMirror`, :class:`MergeProtocol`, :func:`merge_order`)
directly, with randomized event programs whose executions spawn further
cross-LP events.
"""

from heapq import heappop, heappush

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.lpexec import LpMirror, LpWorkerError, MergeProtocol, merge_order

#: Coarse time grid: collisions in *time* are the interesting case (the
#: (time, seq) tiebreak must resolve them identically everywhere).
_TIMES = st.sampled_from([0.0, 1.0, 2.0, 3.0, 5.0, 8.0])
_DELAYS = st.sampled_from([0.0, 0.5, 1.0, 2.0])


@st.composite
def programs(draw):
    """A random event program over N LPs.

    Returns ``(n_lps, initial, spawns)`` where ``initial`` is a list of
    (time, lp) for pre-scheduled events and ``spawns[i]`` is the list of
    (delay, dst_lp) frames the i-th *executed* event emits (events past
    the list's end spawn nothing, so every program terminates) — the
    cross-LP ones are exactly the null messages of the shared-memory
    CMB design.
    """
    n_lps = draw(st.integers(min_value=1, max_value=4))
    initial = draw(
        st.lists(
            st.tuples(_TIMES, st.integers(0, n_lps - 1)),
            min_size=1,
            max_size=12,
        )
    )
    spawns = draw(
        st.lists(
            st.lists(
                st.tuples(_DELAYS, st.integers(0, n_lps - 1)),
                max_size=2,
            ),
            min_size=40,
            max_size=40,
        )
    )
    return n_lps, initial, spawns


def _serial_reference(n_lps, initial, spawns):
    """Execute the program the way the serial merge does.

    Sequence numbers are assigned at *schedule* time in execution order
    (the engine's global counter), events pop in (time, seq) order.
    Returns the executed key order, the per-LP initial key slices, and
    the frames map ``executed key -> [("s", t, seq, dst_lp)]`` that
    MergeProtocol.run consumes.
    """
    heap = []
    seq = 0
    slices = [[] for _ in range(n_lps)]
    for time, lp in initial:
        seq += 1
        heappush(heap, (time, seq, lp))
        slices[lp].append((time, seq))
    order = []
    frames = {}
    executed = 0
    while heap:
        time, s, lp = heappop(heap)
        key = (time, s)
        order.append(key)
        if executed < len(spawns):
            for delay, dst in spawns[executed]:
                seq += 1
                t = time + delay
                heappush(heap, (t, seq, dst))
                frames.setdefault(key, []).append(("s", t, seq, dst))
        executed += 1
    return order, slices, frames


@settings(max_examples=120, deadline=None)
@given(programs())
def test_protocol_reduces_to_serial_merge_order(program):
    """EOT/null/frame interleavings == the serial merge total order."""
    n_lps, initial, spawns = program
    order, slices, frames = _serial_reference(n_lps, initial, spawns)
    mirrors = [LpMirror(lp, keys, keep_order=True) for lp, keys in enumerate(slices)]
    proto = MergeProtocol(mirrors)
    assert proto.run(frames) == order
    # Every mirror drained, and per-LP executed orders are the serial
    # order restricted to that LP (the worker-side view of determinism).
    for mirror in mirrors:
        assert mirror.head() == (float("inf"), 0)
    merged = sorted(k for m in mirrors for k in m.order)
    assert merged == sorted(order)


@settings(max_examples=120, deadline=None)
@given(programs())
def test_merge_order_is_the_sorted_union(program):
    """The serial reference executes the sorted union of all keys."""
    n_lps, initial, spawns = program
    order, slices, frames = _serial_reference(n_lps, initial, spawns)
    all_keys = [k for lp_keys in slices for k in lp_keys] + [
        (t, s) for recs in frames.values() for (_, t, s, _) in recs
    ]
    assert order == merge_order([all_keys])
    # keys are globally unique: the tiebreak-id total order is total
    assert len(set(all_keys)) == len(all_keys)


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.tuples(_TIMES, st.integers(1, 50)), max_size=20),
    st.data(),
)
def test_mirror_head_tracks_live_minimum(entries, data):
    """head() is the minimum un-cancelled key under any schedule/cancel
    interleaving, and never raises on an empty mirror."""
    unique = {}
    for t, s in entries:
        unique.setdefault(s, t)
    keys = [(t, s) for s, t in unique.items()]
    mirror = LpMirror(0)
    live = set()
    for key in keys:
        mirror.apply(("s", key[0], key[1]))
        live.add(key)
        if live and data.draw(st.booleans()):
            victim = data.draw(st.sampled_from(sorted(live)))
            mirror.apply(("c", victim[1]))
            live.discard(victim)
        expect = min(live) if live else (float("inf"), 0)
        assert mirror.head() == expect


def test_mirror_rejects_burst_past_the_bound():
    """A burst whose keys reach the granted bound is a protocol error —
    the distributed check the processes backend ships to its workers."""
    mirror = LpMirror(0, [(1.0, 1), (2.0, 2)])
    with pytest.raises(LpWorkerError):
        mirror.apply(("b", 2, 2.0, 2))  # second pop == bound: violation


def test_mirror_rejects_burst_on_empty_queue():
    mirror = LpMirror(0)
    with pytest.raises(LpWorkerError):
        mirror.apply(("b", 1, 5.0, 0))


def test_next_grant_picks_min_eot_bounded_by_second():
    """The grant goes to the minimal EOT announcement; the bound is the
    runner-up — the LBTS the serial merge computes each round."""
    mirrors = [
        LpMirror(0, [(3.0, 2)]),
        LpMirror(1, [(1.0, 1)]),
        LpMirror(2, [(3.0, 5)]),
    ]
    proto = MergeProtocol(mirrors)
    lp, bound = proto.next_grant()
    assert lp == 1
    assert bound == (3.0, 2)  # time tie resolved by the tiebreak id
    assert proto.eot(1) == (1.0, 1)


def test_next_grant_none_when_drained():
    assert MergeProtocol([LpMirror(0), LpMirror(1)]).next_grant() is None
