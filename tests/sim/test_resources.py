"""Tests for Resource, Store, Gate, and TokenBucket."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.resources import (
    Gate,
    Resource,
    ResourceClosed,
    Store,
    TokenBucket,
)


class TestResource:
    def test_grant_within_capacity_is_immediate(self):
        e = Engine()
        r = Resource(e, capacity=2)
        assert r.acquire().triggered
        assert r.acquire().triggered
        assert r.available == 0

    def test_overflow_queues_fifo(self):
        e = Engine()
        r = Resource(e, capacity=1)
        r.acquire()
        order = []
        for name in ("a", "b"):
            r.acquire().add_callback(lambda ev, n=name: order.append(n))
        r.release()
        assert order == ["a"]
        r.release()
        assert order == ["a", "b"]

    def test_release_without_acquire_raises(self):
        e = Engine()
        r = Resource(e, capacity=1)
        with pytest.raises(SimulationError):
            r.release()

    def test_try_acquire(self):
        e = Engine()
        r = Resource(e, capacity=1)
        assert r.try_acquire()
        assert not r.try_acquire()
        r.release()
        assert r.try_acquire()

    def test_handoff_keeps_in_use_flat(self):
        e = Engine()
        r = Resource(e, capacity=1)
        r.acquire()
        r.acquire()  # queued
        r.release()  # handed to waiter
        assert r.in_use == 1

    def test_close_fails_waiters(self):
        e = Engine()
        r = Resource(e, capacity=1)
        r.acquire()
        waiter = r.acquire()
        failures = []
        waiter.add_callback(lambda ev: failures.append(ev.ok))
        r.close()
        assert failures == [False]
        assert isinstance(waiter.value, ResourceClosed)

    def test_capacity_must_be_positive(self):
        e = Engine()
        with pytest.raises(SimulationError):
            Resource(e, capacity=0)

    def test_queued_count(self):
        e = Engine()
        r = Resource(e, capacity=1)
        r.acquire()
        r.acquire()
        r.acquire()
        assert r.queued == 2


class TestStore:
    def test_put_then_get(self):
        e = Engine()
        s = Store(e)
        s.put("x")
        got = s.get()
        assert got.triggered and got.value == "x"

    def test_get_blocks_until_put(self):
        e = Engine()
        s = Store(e)
        got = s.get()
        assert not got.triggered
        s.put("y")
        assert got.value == "y"

    def test_fifo_ordering(self):
        e = Engine()
        s = Store(e)
        for i in range(5):
            s.put(i)
        assert [s.get().value for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_bound_drops(self):
        e = Engine()
        s = Store(e, capacity=2)
        assert s.put(1)
        assert s.put(2)
        assert not s.put(3)
        assert len(s) == 2

    def test_try_get_empty_returns_none(self):
        e = Engine()
        s = Store(e)
        assert s.try_get() is None

    def test_drain_empties(self):
        e = Engine()
        s = Store(e)
        s.put(1)
        s.put(2)
        assert s.drain() == [1, 2]
        assert len(s) == 0

    def test_close_fails_getters_and_rejects_puts(self):
        e = Engine()
        s = Store(e)
        getter = s.get()
        s.close()
        assert getter.triggered and not getter.ok
        assert not s.put("z")


class TestGate:
    def test_open_gate_passes_immediately(self):
        e = Engine()
        g = Gate(e, open_=True)
        assert g.wait_open().triggered

    def test_closed_gate_blocks_until_open(self):
        e = Engine()
        g = Gate(e, open_=False)
        w = g.wait_open()
        assert not w.triggered
        g.open()
        assert w.triggered

    def test_close_then_reopen_releases_all(self):
        e = Engine()
        g = Gate(e)
        g.close()
        waiters = [g.wait_open() for _ in range(3)]
        g.open()
        assert all(w.triggered for w in waiters)


class TestTokenBucket:
    def test_take_within_tokens(self):
        e = Engine()
        b = TokenBucket(e, tokens=2)
        assert b.take().triggered
        assert b.take().triggered
        assert b.tokens == 0

    def test_take_blocks_when_empty(self):
        e = Engine()
        b = TokenBucket(e, tokens=1)
        b.take()
        waiter = b.take()
        assert not waiter.triggered
        b.give()
        assert waiter.triggered

    def test_give_caps_at_capacity(self):
        e = Engine()
        b = TokenBucket(e, tokens=2)
        b.give(5)
        assert b.tokens == 2

    def test_try_take(self):
        e = Engine()
        b = TokenBucket(e, tokens=1)
        assert b.try_take()
        assert not b.try_take()

    def test_fail_waiters(self):
        e = Engine()
        b = TokenBucket(e, tokens=0)
        w = b.take()
        b.fail_waiters(ConnectionError("broken"))
        assert w.triggered and not w.ok

    def test_negative_tokens_rejected(self):
        e = Engine()
        with pytest.raises(SimulationError):
            TokenBucket(e, tokens=-1)
