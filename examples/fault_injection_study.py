#!/usr/bin/env python3
"""A full phase-1 fault-injection study for one PRESS version.

Injects every fault of the paper's Table 2, one at a time, into a live
cluster; fits each measured timeline to the seven-stage model of Figure
1; and prints the per-fault profiles — the raw material of the paper's
phase-2 analysis.

Usage::

    python examples/fault_injection_study.py [VERSION]

where VERSION is one of TCP-PRESS, TCP-PRESS-HB, VIA-PRESS-0,
VIA-PRESS-3, VIA-PRESS-5 (default: VIA-PRESS-5).
"""

import sys

from repro.core import extract_profile
from repro.experiments import (
    CAMPAIGN_FAULTS,
    FAULT_MTTR,
    Phase1Settings,
    run_baseline,
    run_single_fault,
)
from repro.press import ALL_VERSIONS, SMOKE_SCALE

SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=3,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=1,
)


def main() -> None:
    version = sys.argv[1] if len(sys.argv) > 1 else "VIA-PRESS-5"
    config = ALL_VERSIONS[version]

    print(f"baseline run for {version} ...")
    tn, _ = run_baseline(config, SETTINGS)
    print(f"  normal throughput Tn = {tn:.0f} req/s\n")

    print(f"{'fault':32s} {'detect':>8s} {'outcome':<18s} stages")
    for kind in CAMPAIGN_FAULTS:
        record, cluster = run_single_fault(
            config, kind, SETTINGS, normal_throughput=tn
        )
        profile = extract_profile(record, mttr=FAULT_MTTR[kind])
        if record.detection_at is not None:
            detect = f"{record.detection_at - record.injected_at:6.1f}s"
        else:
            detect = "  never"
        if record.recovered_fully:
            outcome = "self-recovered"
        elif record.reset_at is not None:
            outcome = "needed operator"
        else:
            outcome = "left degraded"
        stages = profile.describe().split(": ", 1)[1]
        print(f"{kind.value:32s} {detect:>8s} {outcome:<18s} {stages}")
        loss = profile.lost_work
        print(f"{'':32s} {'':>8s} lost work per occurrence: {loss:,.0f} requests")


if __name__ == "__main__":
    main()
