#!/usr/bin/env python3
"""How do the paper's conclusions scale with cluster size?

The study fixed the cluster at 4 nodes.  The simulation has no such
constraint, so this example sweeps cluster sizes and reports, per size:

* near-peak throughput for TCP-PRESS and VIA-PRESS-5 (does VIA's edge
  survive more forwarding?);
* availability impact of one node crash (a bigger cluster loses a
  smaller fraction — but also crashes more often!);
* the modeled availability under a Table-3-style load whose per-node
  rates stay fixed while the node count grows.

Usage::

    python examples/cluster_sizing.py
"""

from repro.core import DAY, MINUTE, WEEK, ComponentFault, FaultLoad
from repro.faults import FaultKind, FaultSpec
from repro.press import ALL_VERSIONS, PressCluster, SMOKE_SCALE

SIZES = (2, 4, 6, 8)


def peak(version: str, n_nodes: int) -> float:
    cluster = PressCluster(
        ALL_VERSIONS[version],
        n_nodes=n_nodes,
        scale=SMOKE_SCALE,
        seed=2,
        utilization=1.05,
    )
    cluster.start()
    cluster.run_until(80.0)
    return cluster.measured_rate(25.0, 80.0)


def crash_availability(version: str, n_nodes: int) -> float:
    cluster = PressCluster(
        ALL_VERSIONS[version], n_nodes=n_nodes, scale=SMOKE_SCALE, seed=2
    )
    cluster.start()
    cluster.mendosus.schedule(
        FaultSpec(FaultKind.NODE_CRASH, target="node1", at=30.0)
    )
    cluster.run_until(180.0)
    return cluster.monitor.availability()


def main() -> None:
    print(f"{'nodes':>6s} {'TCP peak':>10s} {'VIA-5 peak':>11s} {'VIA/TCP':>8s}"
          f" {'TCP crash-AA':>13s} {'VIA crash-AA':>13s}")
    for n in SIZES:
        tcp = peak("TCP-PRESS", n)
        via = peak("VIA-PRESS-5", n)
        tcp_aa = crash_availability("TCP-PRESS", n)
        via_aa = crash_availability("VIA-PRESS-5", n)
        print(
            f"{n:6d} {tcp:10.0f} {via:11.0f} {via / tcp:8.2f}"
            f" {tcp_aa:13.4f} {via_aa:13.4f}"
        )
    print(
        "\nReading the table: VIA's throughput edge persists at every size"
        "\n(forwarding grows with n, and that is where VIA's cheap messaging"
        "\npays).  A crash hurts the big cluster less per incident — but a"
        "\n2n-node cluster crashes twice as often, which is why the paper's"
        "\nmodel multiplies per-node rates by n (see core.faultload)."
    )


if __name__ == "__main__":
    main()
