#!/usr/bin/env python3
"""Should your cluster service use kernel TCP or user-level VIA?

The paper's practical payoff: given *your* beliefs about fault rates,
the two-phase methodology answers which substrate yields better
performability.  This example runs the full pipeline —

1. phase 1: measure every fault's seven-stage profile for a TCP and a
   VIA version of the server;
2. phase 2: evaluate the analytic model across a range of assumed
   fault environments;
3. find the crossover: how buggy/immature would the VIA deployment have
   to be before TCP wins?

Usage::

    python examples/choosing_a_transport.py
"""

from repro.core import (
    DAY,
    MONTH,
    WEEK,
    FaultLoad,
    crossover_multiplier,
    evaluate,
    packet_drop_component,
    performability_of,
)
from repro.experiments import CROSSOVER_KINDS, Phase1Settings, measure_profile_set
from repro.press import SMOKE_SCALE

SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=11,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=2,
)


def main() -> None:
    print("phase 1: measuring fault profiles (this runs ~50 experiments)...")
    tcp = measure_profile_set("TCP-PRESS", SETTINGS)
    via = measure_profile_set("VIA-PRESS-5", SETTINGS)
    print(f"  TCP-PRESS   Tn = {tcp.normal_throughput:6.0f} req/s")
    print(f"  VIA-PRESS-5 Tn = {via.normal_throughput:6.0f} req/s\n")

    print("phase 2: performability under a range of fault environments")
    print(f"{'application fault rate':>24s} {'P(TCP)':>9s} {'P(VIA)':>9s}  winner")
    for label, mttf in (("1/day", DAY), ("1/week", WEEK), ("1/month", MONTH)):
        load = FaultLoad.table3(app_fault_mttf=mttf)
        p_tcp = performability_of(evaluate(tcp, load))
        p_via = performability_of(evaluate(via, load))
        winner = "VIA" if p_via > p_tcp else "TCP"
        print(f"{label:>24s} {p_tcp:9.1f} {p_via:9.1f}  {winner}")

    print("\nsensitivity: what if the VIA fabric drops packets?")
    base = FaultLoad.table3(app_fault_mttf=WEEK)
    p_tcp = performability_of(evaluate(tcp, base))
    for label, mttf in (("1/day", DAY), ("1/week", WEEK), ("1/month", MONTH)):
        load = base.with_extra(packet_drop_component(mttf))
        p_via = performability_of(evaluate(via, load))
        winner = "VIA" if p_via > p_tcp else "TCP"
        print(f"  drops {label:8s}: P(VIA) = {p_via:7.1f} vs P(TCP) = {p_tcp:7.1f}  -> {winner}")

    multiplier = crossover_multiplier(
        tcp, via, base, lambda m: base.scaled(m, CROSSOVER_KINDS)
    )
    print(
        f"\ncrossover: VIA's switch/link/application faults would have to"
        f"\noccur at {multiplier:.1f}x the TCP rate before performabilities"
        f"\nequalize (the paper reports approximately 4x)."
    )


if __name__ == "__main__":
    main()
