#!/usr/bin/env python3
"""Quickstart: boot a PRESS cluster, break a link, watch it cope.

Runs the same experiment twice — once with TCP as the intra-cluster
substrate, once with VIA — and prints the throughput timeline around the
fault.  This is the paper's Figure 2 in miniature.

Usage::

    python examples/quickstart.py
"""

from repro.faults import FaultKind, FaultSpec
from repro.press import ALL_VERSIONS, PressCluster, SMOKE_SCALE

FAULT_AT = 40.0
FAULT_LASTS = 40.0
RUN_FOR = 160.0


def run(version_name: str) -> None:
    cluster = PressCluster(ALL_VERSIONS[version_name], scale=SMOKE_SCALE, seed=1)
    cluster.start()

    # Take node2's link down for 40 simulated seconds (intra-cluster
    # traffic only — clients are not disturbed, as in the paper's setup).
    cluster.mendosus.schedule(
        FaultSpec(
            FaultKind.LINK_DOWN,
            target="node2",
            at=FAULT_AT,
            duration=FAULT_LASTS,
        )
    )
    cluster.run_until(RUN_FOR)

    print(f"\n=== {version_name} ===")
    print(f"availability over the run: {cluster.monitor.availability():.4f}")
    print("throughput (req/s, 10s buckets, * marks the fault window):")
    for start in range(0, int(RUN_FOR), 10):
        rate = cluster.measured_rate(start, start + 10)
        marker = "*" if FAULT_AT <= start < FAULT_AT + FAULT_LASTS else " "
        bar = "#" * int(rate / 150)
        print(f"  t={start:4d}s {marker} {rate:6.0f} {bar}")
    views = {n: sorted(s.members) for n, s in cluster.servers.items()}
    print(f"final membership views: {views}")


def main() -> None:
    for version in ("TCP-PRESS", "VIA-PRESS-5"):
        run(version)
    print(
        "\nNote how TCP stalls the whole cluster for the entire fault"
        "\n(retransmission is its only fault detector), while VIA breaks"
        "\nthe connections instantly, reconfigures to 3+1 nodes, and"
        "\nbarely dips — the paper's central observation."
    )


if __name__ == "__main__":
    main()
