#!/usr/bin/env python3
"""Prototype the paper's §7 "ideal" communication layer and measure it.

The discussion section argues a high-performance, high-availability
communication layer should (a) preserve message boundaries, (b) use
single-copy transfers, (c) pre-allocate channel resources, and (d) match
the fabric's fault model.  VIA already does (a), (c), (d); this example
uses the library's ablation knobs to build two *hypothetical* stacks and
compare all four under the same fault campaign:

* ``TCP``           — the real kernel-TCP stack;
* ``TCP+boundaries``— TCP with boundary-preserving framing (knob);
* ``VIA``           — the real pre-allocated fail-stop stack;
* ``VIA-dynamic``   — VIA robbed of pre-allocation (knob).

Usage::

    python examples/custom_communication_layer.py
"""

import dataclasses

from repro.faults import FaultKind, FaultSpec
from repro.press import ALL_VERSIONS, PressCluster, SMOKE_SCALE
from repro.transports.tcp.params import DEFAULT_TCP_PARAMS
from repro.transports.via.params import DEFAULT_VIA_PARAMS

SCENARIOS = {
    "TCP": dict(version="TCP-PRESS"),
    "TCP+boundaries": dict(
        version="TCP-PRESS",
        tcp_params=dataclasses.replace(
            DEFAULT_TCP_PARAMS, boundary_preserving=True
        ),
    ),
    "VIA": dict(version="VIA-PRESS-0"),
    "VIA-dynamic": dict(
        version="VIA-PRESS-0",
        via_params=dataclasses.replace(DEFAULT_VIA_PARAMS, dynamic_buffers=True),
    ),
}

FAULTS = (
    FaultSpec(FaultKind.KERNEL_MEMORY, target="node2", at=30.0, duration=40.0),
    FaultSpec(FaultKind.BAD_PARAM_SIZE, target="node2", at=30.0, off_by_n=33),
)


def run(name: str, spec: FaultSpec) -> tuple:
    params = SCENARIOS[name]
    cluster = PressCluster(
        ALL_VERSIONS[params["version"]],
        scale=SMOKE_SCALE,
        seed=6,
        tcp_params=params.get("tcp_params"),
        via_params=params.get("via_params"),
    )
    cluster.start()
    cluster.mendosus.schedule(spec)
    cluster.run_until(120.0)
    processes_lost = sum(s.fail_fasts for s in cluster.servers.values())
    return cluster.monitor.availability(), processes_lost


def main() -> None:
    for spec in FAULTS:
        print(f"\n=== fault: {spec.label()} ===")
        print(f"{'stack':16s} {'availability':>13s} {'processes lost':>15s}")
        for name in SCENARIOS:
            availability, lost = run(name, spec)
            print(f"{name:16s} {availability:13.4f} {lost:15d}")
    print(
        "\nLessons (paper §7): pre-allocation decides the memory-fault"
        "\ncolumn; message boundaries decide the bad-parameter column."
        "\nThe ideal layer takes VIA's row one step further by keeping"
        "\nboth properties at once."
    )


if __name__ == "__main__":
    main()
