"""Regenerates Figure 9: performability when the immaturity of the VIA
networking subsystem causes occasional system crashes, modeled as switch
crashes (1/week, 1/month, 1/3-months); TCP on mature Ethernet is charged
none.

Paper's shape: same trade as the other sensitivity studies — frequent
system faults hand the win to TCP; rare ones leave VIA ahead.
"""

import pytest

from repro.experiments.performability import format_sensitivity, run_figure9

from .conftest import run_once


def test_figure9(benchmark, bench_settings, campaign):
    fig = run_once(benchmark, lambda: run_figure9(bench_settings))
    print()
    print(format_sensitivity(fig))

    p_tcp = fig.tcp["TCP-PRESS-HB"]
    for version in ("VIA-PRESS-0", "VIA-PRESS-3", "VIA-PRESS-5"):
        assert fig.via["1/week"][version] < p_tcp, version
        assert (
            fig.via["1/week"][version]
            < fig.via["1/month"][version]
            < fig.via["1/3months"][version]
        ), version
