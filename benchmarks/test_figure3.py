"""Regenerates Figure 3: throughput under a node crash (hard reboot).

Paper's shape: TCP-PRESS grinds to a halt, the rebooted node's rejoin is
disregarded (the timing hole), and it ends up a stranded singleton;
TCP-PRESS-HB detects via heartbeats and the VIA versions via broken
connections, both run 3-node during the outage and re-integrate the node
after reboot.
"""

import pytest

from repro.experiments.timelines import format_timeline_figure, run_figure3

from .conftest import run_once


def test_figure3(benchmark, bench_settings):
    fig = run_once(benchmark, lambda: run_figure3(bench_settings))
    print()
    print(format_timeline_figure(fig, bucket=10.0, title="Figure 3 — node crash"))

    tcp = fig.records["TCP-PRESS"]
    hb = fig.records["TCP-PRESS-HB"]
    via = fig.records["VIA-PRESS-5"]

    # TCP-PRESS: stall while the node is down...
    stall = tcp.timeline.mean_rate(tcp.injected_at + 15, tcp.injected_at + 55)
    assert stall < tcp.normal_throughput * 0.2
    # ...and the rejoin never happens without the operator.
    assert not tcp.recovered_fully
    assert tcp.reset_at is not None

    # HB and VIA keep serving at the 3-node level during the outage...
    for record in (hb, via):
        during = record.timeline.mean_rate(
            record.injected_at + 20, record.injected_at + 55
        )
        assert during > record.normal_throughput * 0.5
        # ...and re-integrate the rebooted node by themselves.
        assert record.recovered_fully
        assert record.rejoined_at is not None

    # VIA detects faster than the heartbeat protocol.
    assert (via.detection_at - via.injected_at) < (
        hb.detection_at - hb.injected_at
    )
