"""Microbenchmarks of the simulation substrate.

Unlike the figure benches these are true hot-loop measurements: they keep
the reproduction honest about its own performance (the full campaign runs
hundreds of simulated minutes, so engine overhead matters).

The CI gate (``benchmarks/bench_gate.py``) runs this file and compares
each bench against the committed ``BENCH_micro.json`` baseline; see
PERFORMANCE.md for how the baseline was measured and how to update it.
"""

import dataclasses

import pytest

from repro.net.fabric import Fabric
from repro.osim.node import Node
from repro.sim.engine import Engine
from repro.transports.base import Message
from repro.transports.tcp import TcpTransport
from repro.transports.tcp.params import DEFAULT_TCP_PARAMS
from repro.transports.via import ViaTransport

#: The paper's testbed MTU: every TCP message is segmented into MSS-sized
#: frames, so the campaign-representative TCP shape uses a 1460-byte MSS
#: rather than the page-sized default segments.
MSS_1460_PARAMS = dataclasses.replace(DEFAULT_TCP_PARAMS, segment_size=1460)


def test_engine_event_stream(benchmark):
    """The campaign's dominant engine pattern: deliver, cancel, re-arm.

    Every delivered TCP segment cancels a pending retransmission timer
    and arms a fresh one ~0.2 s out, so the heap serves a stream of
    near-term events threaded through a band of long-lived timers that
    almost never fire.  This is the shape the timer freelist, the
    head-slot, and incremental tombstone compaction target.
    """

    def run_stream():
        e = Engine()
        count = [0]
        pending = [None]

        def on_rto():
            pending[0] = None

        def deliver():
            count[0] += 1
            timer = pending[0]
            if timer is not None:
                timer.cancel()
                pending[0] = None
            if count[0] < 10_000:
                pending[0] = e.call_after(0.2, on_rto)
                e.call_after(65e-6, deliver)

        e.call_after(65e-6, deliver)
        e.run()
        return count[0]

    assert benchmark(run_stream) == 10_000


def test_engine_event_stream_span_guard(benchmark):
    """The deliver/cancel/re-arm stream with the span guard per delivery.

    Request-scoped tracing put a ``spans = engine.spans; if spans is not
    None`` probe at every hot event site (fabric hop, TCP segment, VIA
    descriptor, HTTP serve).  With collection off — every campaign run
    unless ``--spans`` is passed — that probe is the *whole* cost of the
    instrumentation, so this bench runs the exact workload of
    ``test_engine_event_stream`` with the probe added to each delivery.
    The paired bench-gate claim (``span_guard_zero_overhead``) holds the
    difference within 2%.
    """

    def run_stream():
        e = Engine()
        count = [0]
        pending = [None]

        def on_rto():
            pending[0] = None

        def deliver():
            spans = e.spans
            if spans is not None:  # collection is off in this bench
                spans.start(count[0], "net.frame", e.now)
            count[0] += 1
            timer = pending[0]
            if timer is not None:
                timer.cancel()
                pending[0] = None
            if count[0] < 10_000:
                pending[0] = e.call_after(0.2, on_rto)
                e.call_after(65e-6, deliver)

        e.call_after(65e-6, deliver)
        e.run()
        return count[0]

    assert benchmark(run_stream) == 10_000


def test_engine_event_stream_profiler_guard(benchmark):
    """The deliver/cancel/re-arm stream with the flight-recorder guard.

    The wall-clock profiler put a ``profiler = engine.profiler; if
    profiler is not None`` probe at the fabric's fastpath counter sites,
    and ``Engine.run`` checks the attach point once per call to pick the
    instrumented loop.  With profiling off — every run unless
    ``--profile`` is passed — that attribute-load-plus-None-test is the
    *whole* cost, exactly like the span guard above; this bench runs the
    span-guard workload with the profiler probe per delivery instead.
    The paired bench-gate claim (``profiler_guard_zero_overhead``) holds
    the difference within 3%.
    """

    def run_stream():
        e = Engine()
        count = [0]
        pending = [None]

        def on_rto():
            pending[0] = None

        def deliver():
            profiler = e.profiler
            if profiler is not None:  # profiling is off in this bench
                profiler.count("bench.deliver")
            count[0] += 1
            timer = pending[0]
            if timer is not None:
                timer.cancel()
                pending[0] = None
            if count[0] < 10_000:
                pending[0] = e.call_after(0.2, on_rto)
                e.call_after(65e-6, deliver)

        e.call_after(65e-6, deliver)
        e.run()
        return count[0]

    assert benchmark(run_stream) == 10_000


def test_engine_event_throughput(benchmark):
    """Schedule+dispatch cost of a bare chained engine event."""

    def run_10k():
        e = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                e.call_after(0.001, tick)

        e.call_after(0.001, tick)
        e.run()
        return count[0]

    assert benchmark(run_10k) == 10_000


def test_engine_heap_churn(benchmark):
    """Cost with many concurrent timers (cancellations included)."""

    def run_churn():
        e = Engine()
        timers = [e.call_after(float(i % 97) + 1.0, lambda: None) for i in range(5000)]
        for t in timers[::2]:
            t.cancel()
        e.run()
        return e.events_processed

    assert benchmark(run_churn) == 2500


def _transport_pair(transport_cls, params=None):
    from repro.transports.via.params import DEFAULT_VIA_PARAMS

    e = Engine()
    fabric = Fabric(e)
    nodes = {}
    transports = {}
    kwargs = {}
    if transport_cls is ViaTransport:
        # The burst below exceeds PRESS's default per-peer shed limit;
        # for a raw throughput measurement, widen the queue.
        kwargs["params"] = dataclasses.replace(
            DEFAULT_VIA_PARAMS, app_queue_limit=10_000
        )
    if params is not None:
        kwargs["params"] = params
    for name in ("a", "b"):
        node = Node(e, name, fabric.attach(name))
        node.process.start()
        nodes[name] = node
        transports[name] = transport_cls(e, node, **kwargs)
    received = [0]
    transports["b"].on_message = lambda p, m: received.__setitem__(
        0, received[0] + 1
    )
    ok = []
    ch = transports["a"].connect("b", ok.append)
    e.run(until=5.0)
    assert ok == [True]
    return e, ch, received


def test_tcp_roundtrip_stream(benchmark):
    """Campaign-shaped TCP round trip: 8 KB messages over MSS-1460 frames.

    Each message is segmented into ~6 MSS-sized frames, every frame earns
    a cumulative ACK, and the window keeps dozens of frames in flight —
    the shape of the intra-cluster PRESS traffic the fast path was built
    for (one delivery event per frame instead of three hops plus three
    closures).
    """

    def run_msgs():
        e, ch, received = _transport_pair(TcpTransport, params=MSS_1460_PARAMS)
        for _ in range(500):
            ch.send(Message("m", 8192))
        e.run(until=100.0)
        return received[0]

    assert benchmark(run_msgs) == 500


def test_tcp_message_throughput(benchmark):
    """End-to-end simulated cost per TCP message (framing+segments+acks)."""

    def run_msgs():
        e, ch, received = _transport_pair(TcpTransport)
        for _ in range(500):
            ch.send(Message("m", 1024))
        e.run(until=100.0)
        return received[0]

    assert benchmark(run_msgs) == 500


def test_via_message_throughput(benchmark):
    """End-to-end simulated cost per VIA message (descriptor+credits)."""

    def run_msgs():
        e, ch, received = _transport_pair(ViaTransport)
        for _ in range(500):
            ch.send(Message("m", 1024))
        e.run(until=100.0)
        return received[0]

    assert benchmark(run_msgs) == 500


def test_bus_publish_fastpath(benchmark):
    """Zero-subscriber publish() cost — the observability tax on every
    hot-path event site when nothing is listening.

    The observatory made buckets and process lifecycle publish on the
    bus, so the inactive-bus early-out now guards the monitor's
    completion path too; this bench keeps it an attribute load plus a
    set probe, not an event construction.
    """
    from repro.obs.bus import EventBus
    from repro.obs.events import CACHE_HIT

    def run_publishes():
        e = Engine()
        bus = EventBus(e)
        n = 0
        for _ in range(100_000):
            bus.publish(CACHE_HIT, file="f0")
            n += 1
        return n

    assert benchmark(run_publishes) == 100_000


def test_cluster_simulation_rate(benchmark):
    """Simulated-seconds per wall-second for a fault-free PRESS cluster."""
    from repro.press.cluster import SMOKE_SCALE, PressCluster
    from repro.press.config import VIA_PRESS_5

    def run_cluster():
        c = PressCluster(VIA_PRESS_5, scale=SMOKE_SCALE, seed=1)
        c.start()
        c.run_until(30.0)
        return c.engine.events_processed

    events = benchmark(run_cluster)
    assert events > 1000


@pytest.mark.parametrize("shards", [1, 4], ids=["shards1", "shards4"])
def test_lp_cluster_64node(benchmark, shards):
    """64-node cluster under the single loop vs four logical processes.

    The LP layer exists for clusters too large for one event loop's
    cache footprint; this pair measures what the conservative merge
    actually costs (or buys) at that scale.  Results are bit-identical
    by construction — the equivalence suite enforces that — so the pair
    is purely a wall-clock comparison.  On a single-core host the
    sharded run cannot win (there is no parallel hardware to reclaim
    the merge overhead); the gated claim in BENCH_micro.json therefore
    bounds the overhead rather than asserting a speedup — see
    PERFORMANCE.md ("LP sharding").
    """
    from repro.press.cluster import SMOKE_SCALE, PressCluster
    from repro.press.config import VIA_PRESS_5

    def run_cluster():
        c = PressCluster(
            VIA_PRESS_5, n_nodes=64, scale=SMOKE_SCALE, seed=1,
            utilization=0.5, shards=shards,
        )
        c.start()
        c.run_until(15.0)
        return c.engine.events_processed

    events = benchmark(run_cluster)
    assert events > 10_000


@pytest.mark.parametrize(
    "backend", ["serial", "threads", "processes"],
    ids=["serial", "threads", "processes"],
)
def test_lp_backend_64node(benchmark, backend):
    """The 64-node / 4-LP cluster under each execution backend.

    The companion of ``test_lp_cluster_64node``: same workload, but the
    four logical processes execute serially, on worker threads, or on OS
    worker processes exchanging EOT/null/frame records over pipes.  All
    three are bit-identical by construction (``tests/sim/test_lp_backends``
    enforces that), so the triple is purely a wall-clock comparison.  The
    gated claims in BENCH_micro.json are CPU-aware: on a multi-core host
    the processes backend must beat serial by ``min_speedup_multicore``;
    on a single core there is no parallel hardware to win with, so the
    gate degrades to an honest overhead bound (``min_speedup`` < 1) —
    see PERFORMANCE.md ("Parallel LP backend").
    """
    from repro.press.cluster import SMOKE_SCALE, PressCluster
    from repro.press.config import VIA_PRESS_5

    def run_cluster():
        c = PressCluster(
            VIA_PRESS_5, n_nodes=64, scale=SMOKE_SCALE, seed=1,
            utilization=0.5, shards=4, lp_backend=backend,
        )
        c.start()
        c.run_until(15.0)
        return c.engine.events_processed

    events = benchmark(run_cluster)
    assert events > 10_000


@pytest.mark.parametrize("mode", ["cold", "warm"])
def test_campaign_warm_vs_cold(benchmark, mode):
    """One warm group (baseline + two faults), cold vs warm-started.

    The cold side re-simulates the shared 240-simulated-second
    pre-injection prefix in every cell; the warm side restores it from a
    checkpoint (simulated once, then amortized across rounds through the
    in-process blob cache — the steady state of a multi-rep campaign).
    The pair is the gate for the warm-start speedup claim recorded in
    BENCH_micro.json.
    """
    from repro.experiments import warmstart
    from repro.experiments.runner import run_campaign
    from repro.experiments.settings import Phase1Settings
    from repro.experiments.store import MemoryStore
    from repro.faults.spec import FaultKind
    from repro.press.cluster import SMOKE_SCALE

    # A paper-faithful warm-segment layout: a long pre-injection window
    # (warm + fault_at) dominating each cell, the regime the checkpoint
    # cache targets (the compressed test layouts shrink that window
    # until warmup no longer dominates — see PERFORMANCE.md).
    settings = Phase1Settings(
        scale=SMOKE_SCALE,
        seed=11,
        warm=60.0,
        fault_at=180.0,
        fault_duration=40.0,
        post_recovery=60.0,
        tail=40.0,
        replications=1,
    )
    faults = [FaultKind.LINK_DOWN, FaultKind.NODE_CRASH]

    def run_group():
        _sets, report = run_campaign(
            settings,
            versions=["TCP-PRESS"],
            faults=faults,
            store=MemoryStore(),
            use_cache=False,
            warm_start=(mode == "warm"),
        )
        return len(report.cells)

    if mode == "warm":
        # Pay the one-off checkpoint capture outside the timed rounds.
        warmstart._memory_blobs.clear()
        run_group()
    assert benchmark(run_group) == 3
