"""Regenerates the §9 headline: faults in a VIA-based server (switch,
link, and application errors) must occur at approximately **4×** the rate
of a TCP-based system before their performabilities equalize.
"""

import pytest

from repro.experiments.performability import run_crossover

from .conftest import run_once


def test_crossover(benchmark, bench_settings, campaign):
    multipliers = run_once(benchmark, lambda: run_crossover(bench_settings))
    print()
    print("§9 crossover multipliers (VIA fault rate vs. TCP-PRESS):")
    for version, m in multipliers.items():
        print(f"  {version:14s} {m:5.2f}x   (paper: ~4x)")

    # The multiplier is noise-sensitive (log-scale metric over measured
    # stall profiles); across seeds it lands in roughly 4-8x.  The
    # paper's qualitative claim — a *several-fold* rate disadvantage is
    # needed before TCP wins — reproduces.
    for version, m in multipliers.items():
        assert 2.0 <= m <= 10.0, (version, m)
    mean = sum(multipliers.values()) / len(multipliers)
    assert mean == pytest.approx(4.0, rel=1.0)
