"""Regenerates Figure 4: memory-exhaustion faults.

Paper's shape: kernel-memory exhaustion zeroes TCP-PRESS (stall) and
splinters TCP-PRESS-HB, while the VIA versions — having pre-allocated all
communication memory — show no degradation at all.  Pinnable-memory
exhaustion, conversely, bites only VIA-PRESS-5, whose zero-copy cache
must shed pinned files (cache misses degrade throughput during the
fault).
"""

import pytest

from repro.experiments.timelines import format_timeline_figure, run_figure4

from .conftest import run_once


def test_figure4(benchmark, bench_settings):
    figs = run_once(benchmark, lambda: run_figure4(bench_settings))
    print()
    print(
        format_timeline_figure(
            figs["kernel-memory"], bucket=10.0,
            title="Figure 4a — kernel memory exhaustion",
        )
    )
    print(
        format_timeline_figure(
            figs["memory-pinning"], bucket=10.0,
            title="Figure 4b — pinnable memory exhaustion",
        )
    )

    km = figs["kernel-memory"].records
    stall = km["TCP-PRESS"].timeline.mean_rate(
        km["TCP-PRESS"].injected_at + 15, km["TCP-PRESS"].cleared_at
    )
    assert stall < km["TCP-PRESS"].normal_throughput * 0.15

    # TCP-PRESS-HB splinters and keeps the 3-node group serving.
    hb = km["TCP-PRESS-HB"]
    assert hb.detection_at is not None
    during = hb.timeline.mean_rate(hb.detection_at + 5, hb.cleared_at)
    assert during > hb.normal_throughput * 0.5

    # VIA versions: pre-allocation immunity (no detectable impact).
    for version in ("VIA-PRESS-0", "VIA-PRESS-3", "VIA-PRESS-5"):
        record = km[version]
        during = record.timeline.mean_rate(record.injected_at, record.cleared_at)
        assert during > record.normal_throughput * 0.9, version

    pin = figs["memory-pinning"].records
    # Only the zero-copy version degrades under the pin fault.
    v5 = pin["VIA-PRESS-5"]
    during_v5 = v5.timeline.mean_rate(v5.injected_at, v5.cleared_at)
    for version in ("TCP-PRESS", "VIA-PRESS-0"):
        record = pin[version]
        during = record.timeline.mean_rate(record.injected_at, record.cleared_at)
        assert during > record.normal_throughput * 0.9, version
    assert during_v5 < v5.normal_throughput * 0.97
