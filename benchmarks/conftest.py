"""Benchmark fixtures.

The table/figure benchmarks are regeneration harnesses: each runs the
experiment that reproduces one exhibit of the paper, times it with
pytest-benchmark (single round — these are simulations, not
microbenchmarks), asserts the exhibit's *shape*, and prints the
reproduced rows so ``pytest benchmarks/ --benchmark-only -s`` doubles as
the paper's results section.
"""

from __future__ import annotations

import pytest

from repro.experiments.settings import Phase1Settings
from repro.press.cluster import SMOKE_SCALE

#: Compressed but fully-featured experiment layout for the benches.
BENCH_SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=7,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
)


def pytest_addoption(parser):
    group = parser.getgroup("campaign", "phase-1 campaign execution")
    group.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for campaign cells (1 = serial)",
    )
    group.addoption(
        "--cache-dir",
        default=None,
        help="persist campaign cell results here so repeated benchmark "
        "runs skip the simulations entirely",
    )


@pytest.fixture(scope="session")
def bench_settings() -> Phase1Settings:
    return BENCH_SETTINGS


@pytest.fixture(scope="session")
def campaign(request, bench_settings):
    """The full phase-1 campaign, shared by the figure-6..10 benches.

    ``--jobs N`` fans the cells out over N worker processes and
    ``--cache-dir DIR`` persists them, so one warm campaign serves every
    figure benchmark across runs.
    """
    from repro.experiments.campaign import configure, full_campaign
    from repro.experiments.store import open_store

    jobs = request.config.getoption("--jobs")
    cache_dir = request.config.getoption("--cache-dir")
    # Configure process-wide so non-fixture campaigns (e.g. validation
    # benches calling measure_profile_set internally) also benefit.
    configure(store=open_store(cache_dir) if cache_dir else None, jobs=jobs)
    return full_campaign(bench_settings)


def run_once(benchmark, fn):
    """Run a simulation-scale benchmark exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
