"""Regenerates Figure 7: performability when transient packet drops are
charged to the VIA versions only (each drop is reported as a fatal error
and the process terminates itself); TCP tolerates drops by design.

Paper's shape: the crossover sits at roughly one drop per week — TCP wins
when drops are more frequent, VIA wins when they are rarer.
"""

import pytest

from repro.experiments.performability import format_sensitivity, run_figure7

from .conftest import run_once


def test_figure7(benchmark, bench_settings, campaign):
    fig = run_once(benchmark, lambda: run_figure7(bench_settings))
    print()
    print(format_sensitivity(fig))

    p_tcp = fig.tcp["TCP-PRESS-HB"]  # the stronger TCP baseline
    for version in ("VIA-PRESS-0", "VIA-PRESS-3", "VIA-PRESS-5"):
        assert fig.via["1/day"][version] < p_tcp, version  # TCP wins
        assert fig.via["1/month"][version] > p_tcp * 0.95, version  # VIA wins
        # Monotone in the drop rate.
        assert (
            fig.via["1/day"][version]
            < fig.via["1/week"][version]
            < fig.via["1/month"][version]
        )
