"""EXTENSION: quantify the paper's §7 "ideal" communication layer.

IDEAL-PRESS = VIA-PRESS-5's data path (message-based, zero-copy,
pre-allocated, fail-stop) + synchronous descriptor validation (errors
confined to the offending call).  Under the fault classes where each
existing design loses, the ideal layer should lose nowhere:

* bad parameters  — TCP survives (EFAULT) but VIA fail-fasts: ideal
  must survive like TCP;
* kernel memory   — VIA shrugs, TCP stalls: ideal must shrug;
* node crash      — both detect; ideal must detect instantly like VIA;
* throughput      — ideal keeps VIA-5's peak.
"""

import pytest

from repro.experiments.table1 import measure_peak
from repro.experiments.timelines import run_timeline_figure
from repro.faults.spec import FaultKind

from .conftest import run_once

CONTENDERS = ["TCP-PRESS", "VIA-PRESS-5", "IDEAL-PRESS"]


def test_ideal_layer(benchmark, bench_settings):
    def run_all():
        out = {
            "peak": {
                v: measure_peak(v, bench_settings) for v in CONTENDERS
            },
            "null-pointer": run_timeline_figure(
                FaultKind.BAD_PARAM_NULL, CONTENDERS, bench_settings
            ),
            "off-by-size": run_timeline_figure(
                FaultKind.BAD_PARAM_SIZE, CONTENDERS, bench_settings
            ),
            "kernel-memory": run_timeline_figure(
                FaultKind.KERNEL_MEMORY, CONTENDERS, bench_settings
            ),
        }
        return out

    out = run_once(benchmark, run_all)

    def fail_fasts(record):
        return len(
            [a for a in record.timeline.annotations if a.label == "fail-fast"]
        )

    print()
    print("§7 ideal layer vs. the studied designs")
    print(f"{'metric':26s} " + " ".join(f"{v:>12s}" for v in CONTENDERS))
    print(
        f"{'peak throughput (req/s)':26s} "
        + " ".join(f"{out['peak'][v]:12.0f}" for v in CONTENDERS)
    )
    for fault in ("null-pointer", "off-by-size", "kernel-memory"):
        records = out[fault].records
        print(
            f"{fault + ' procs lost':26s} "
            + " ".join(f"{fail_fasts(records[v]):12d}" for v in CONTENDERS)
        )
        print(
            f"{fault + ' avail':26s} "
            + " ".join(
                f"{records[v].timeline.availability:12.4f}"
                for v in CONTENDERS
            )
        )

    # Performance: the ideal layer keeps VIA-5's peak (within noise).
    assert out["peak"]["IDEAL-PRESS"] == pytest.approx(
        out["peak"]["VIA-PRESS-5"], rel=0.05
    )
    assert out["peak"]["IDEAL-PRESS"] > out["peak"]["TCP-PRESS"] * 1.3

    # Containment: bad parameters kill no processes (VIA-5 loses 2; the
    # byte-stream TCP loses 1 on off-by-N).
    for fault in ("null-pointer", "off-by-size"):
        records = out[fault].records
        assert fail_fasts(records["IDEAL-PRESS"]) == 0, fault
        assert fail_fasts(records["VIA-PRESS-5"]) == 2, fault
        assert records["IDEAL-PRESS"].recovered_fully

    # Pre-allocation: immune to the kernel-memory fault, like VIA.
    km = out["kernel-memory"].records["IDEAL-PRESS"]
    during = km.timeline.mean_rate(km.injected_at, km.cleared_at)
    assert during > km.normal_throughput * 0.9
