"""Regenerates Figure 10: the combined pessimistic VIA fault load —
packet drops 1/month + extra application bugs 1/2-weeks + system failures
1/month.

Paper's shape: under this load the performability advantage of user-level
communication evaporates — VIA versions fall below the TCP-HB baseline
(the paper reports two of three below; the exact count depends on the
assumed base application rate).
"""

import pytest

from repro.experiments.performability import format_sensitivity, run_figure10

from .conftest import run_once


def test_figure10(benchmark, bench_settings, campaign):
    fig = run_once(benchmark, lambda: run_figure10(bench_settings))
    print()
    print(format_sensitivity(fig))

    p_hb = fig.tcp["TCP-PRESS-HB"]
    p_tcp = fig.tcp["TCP-PRESS"]
    via = fig.via["combined"]

    # The pessimistic load erases VIA's performability lead over TCP-HB.
    below_hb = sum(1 for p in via.values() if p < p_hb)
    assert below_hb >= 2
    # Without the extra load, every VIA version was comfortably ahead —
    # the drop is what the figure is about.
    assert max(via.values()) < p_hb * 1.1
    # VIA-5's raw speed keeps it closest to (or above) plain TCP-PRESS.
    assert via["VIA-PRESS-5"] > p_tcp * 0.8
