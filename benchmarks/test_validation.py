"""EXTENSION: validate the phase-2 analytic model against direct
simulation — something the paper inherits from [26] on faith.

Two checks:

* **sequential** — one long run with a roster of widely-spaced faults;
  measured availability should match the sum of independently measured
  single-fault losses (the additivity assumption);
* **Monte Carlo** — Poisson fault arrivals at accelerated rates; the
  model is evaluated at the same rates (the single-fault-queueing
  assumption now also in play).

Findings (also recorded in EXPERIMENTS.md): additivity holds to roughly
10-35% of unavailability when the cluster has capacity headroom; at high
utilization post-recovery re-balancing extends beyond the observed
stages and the model turns optimistic; under heavy acceleration,
overlapping faults truncate each other's damage and the model turns
pessimistic.
"""

import dataclasses

import pytest

from repro.core.faultload import DAY, FaultLoad
from repro.experiments.validation import (
    run_monte_carlo,
    run_sequential_validation,
)

from .conftest import run_once


@pytest.fixture(scope="module")
def validation_settings(bench_settings):
    # Sub-saturation, as the paper's stable-throughput precondition
    # requires; replications already folded into the profile cache.
    return dataclasses.replace(bench_settings, utilization=0.72)


def test_validation_sequential(benchmark, validation_settings):
    def run_both():
        return {
            v: run_sequential_validation(v, validation_settings, spacing=500.0)
            for v in ("TCP-PRESS", "VIA-PRESS-5")
        }

    results = run_once(benchmark, run_both)
    print()
    print("Model validation — sequential fault roster")
    for version, r in results.items():
        print(
            f"  {version:12s} simulated AA {r.simulated_availability:.4f}"
            f"  predicted AA {r.predicted_availability:.4f}"
            f"  error/unavail {r.relative_error:.2f}"
        )
    for r in results.values():
        assert r.relative_error < 0.6, r


def test_validation_monte_carlo(benchmark, validation_settings):
    load = FaultLoad.table3(app_fault_mttf=DAY)

    def run_mc():
        return run_monte_carlo(
            "VIA-PRESS-5",
            load,
            horizon=3000.0,
            acceleration=60.0,
            settings=validation_settings,
        )

    r = run_once(benchmark, run_mc)
    print()
    print(
        f"Model validation — Monte Carlo ({r.faults_injected} random faults"
        f" over {r.horizon:.0f}s at 60x rates)"
    )
    print(
        f"  simulated AA {r.simulated_availability:.4f}"
        f"  predicted AA {r.predicted_availability:.4f}"
    )
    sim_u = 1 - r.simulated_availability
    pred_u = 1 - r.predicted_availability
    # Unavailabilities agree within a factor of ~2.5 despite overlap.
    assert pred_u / 2.5 < sim_u < pred_u * 2.5
