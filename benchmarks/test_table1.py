"""Regenerates Table 1: near-peak throughput of the five PRESS versions.

Paper: TCP-PRESS 4965, TCP-PRESS-HB 4965, VIA-PRESS-0 6031,
VIA-PRESS-3 6221, VIA-PRESS-5 7058 req/s on the 4-node testbed.
"""

import pytest

from repro.experiments.table1 import format_table1, run_table1
from repro.press.config import PAPER_TABLE1_THROUGHPUT

from .conftest import run_once


def test_table1(benchmark, bench_settings):
    rows = run_once(benchmark, lambda: run_table1(bench_settings))
    print()
    print(format_table1(rows))

    measured = {r.version: r.measured for r in rows}
    # Shape: ordering and ratios of the paper hold.
    assert (
        measured["TCP-PRESS"]
        < measured["VIA-PRESS-0"]
        < measured["VIA-PRESS-3"]
        < measured["VIA-PRESS-5"]
    )
    for version, paper in PAPER_TABLE1_THROUGHPUT.items():
        ratio = (measured[version] / measured["TCP-PRESS"]) / (
            paper / PAPER_TABLE1_THROUGHPUT["TCP-PRESS"]
        )
        assert ratio == pytest.approx(1.0, abs=0.08), version
