"""Ablations of the design choices the paper's Discussion (§7) singles
out.  Each flips exactly one property and quantifies the availability it
was buying:

* **pre-allocation** — run VIA with dynamic kernel-memory buffers and
  watch it inherit TCP's memory-exhaustion stall;
* **message boundaries** — run TCP with boundary-preserving framing and
  watch off-by-N faults stop killing processes;
* **heartbeat threshold** — sweep the detection threshold and expose the
  detection-latency side of the trade;
* **operator-free re-merge** — recompute the model with stage E removed,
  pricing PRESS's never-merge-partitions policy.
"""

import dataclasses

import pytest

from repro.core.faultload import DAY, FaultLoad
from repro.core.model import evaluate
from repro.core.stages import STAGES, SevenStageProfile, Stage
from repro.faults.spec import FaultKind, FaultSpec
from repro.press.cluster import SMOKE_SCALE, PressCluster
from repro.press.config import TCP_PRESS, TCP_PRESS_HB, VIA_PRESS_0
from repro.transports.tcp.params import DEFAULT_TCP_PARAMS
from repro.transports.via.params import DEFAULT_VIA_PARAMS

from .conftest import run_once


def test_ablation_preallocation(benchmark):
    """§7: "if there are enough resources these should be pre-allocated
    during channel set-up."  With dynamic buffers, the kernel-memory
    fault stalls VIA exactly as it stalls TCP."""

    def run_pair():
        out = {}
        for label, dynamic in (("preallocated", False), ("dynamic", True)):
            params = dataclasses.replace(
                DEFAULT_VIA_PARAMS, dynamic_buffers=dynamic
            )
            c = PressCluster(
                VIA_PRESS_0, scale=SMOKE_SCALE, seed=9, via_params=params
            )
            c.start()
            c.mendosus.schedule(
                FaultSpec(
                    FaultKind.KERNEL_MEMORY, target="node2", at=30.0,
                    duration=40.0,
                )
            )
            c.run_until(70.0)
            out[label] = (
                c.measured_rate(40.0, 70.0) / c.measured_rate(10.0, 30.0)
            )
        return out

    out = run_once(benchmark, run_pair)
    print()
    print("Ablation: pre-allocation under kernel-memory exhaustion")
    for label, ratio in out.items():
        print(f"  {label:13s} throughput retained: {ratio * 100:5.1f}%")
    assert out["preallocated"] > 0.9  # immune, as in Figure 4
    # The dynamic variant loses the faulty node's whole contribution
    # (its sends starve) — though VIA's user-level flow control still
    # spares the *rest* of the cluster the total stall TCP suffers.
    assert out["dynamic"] < 0.75
    assert out["dynamic"] < out["preallocated"] - 0.15


def test_ablation_message_boundaries(benchmark):
    """§7: byte streams let one bad send poison everything after it;
    with preserved boundaries the damage stays inside one message."""

    def run_pair():
        out = {}
        for label, preserve in (("byte-stream", False), ("boundaries", True)):
            params = dataclasses.replace(
                DEFAULT_TCP_PARAMS, boundary_preserving=preserve
            )
            c = PressCluster(
                TCP_PRESS, scale=SMOKE_SCALE, seed=9, tcp_params=params
            )
            c.start()
            c.mendosus.schedule(
                FaultSpec(
                    FaultKind.BAD_PARAM_SIZE, target="node2", at=30.0,
                    off_by_n=17,
                )
            )
            c.run_until(120.0)
            out[label] = {
                "fail_fasts": sum(
                    s.fail_fasts for s in c.servers.values()
                ),
                "availability": c.monitor.availability(),
            }
        return out

    out = run_once(benchmark, run_pair)
    print()
    print("Ablation: framing discipline under an off-by-N size fault")
    for label, row in out.items():
        print(
            f"  {label:12s} processes lost: {row['fail_fasts']}"
            f"   availability: {row['availability']:.4f}"
        )
    assert out["byte-stream"]["fail_fasts"] == 1
    assert out["boundaries"]["fail_fasts"] == 0
    assert (
        out["boundaries"]["availability"]
        >= out["byte-stream"]["availability"]
    )


def test_ablation_heartbeat_threshold(benchmark):
    """Detection latency scales with the threshold: the paper's 3-beat
    choice trades speed against false positives."""

    def run_sweep():
        out = {}
        for threshold in (2, 3, 5):
            config = dataclasses.replace(
                TCP_PRESS_HB, heartbeat_threshold=threshold
            )
            c = PressCluster(config, scale=SMOKE_SCALE, seed=9)
            c.start()
            c.mendosus.schedule(
                FaultSpec(FaultKind.NODE_CRASH, target="node2", at=30.0)
            )
            c.run_until(90.0)
            detections = [
                t for t in c.annotations.times("reconfigured") if t >= 30.0
            ]
            out[threshold] = detections[0] - 30.0 if detections else None
        return out

    out = run_once(benchmark, run_sweep)
    print()
    print("Ablation: heartbeat threshold vs. detection latency")
    for threshold, latency in out.items():
        print(f"  {threshold} beats -> detected in {latency:5.1f}s")
    assert out[2] < out[3] < out[5]
    # The paper's configuration detects within the 15s+phase window.
    assert out[3] <= 21.0


def test_ablation_automatic_remerge_live(benchmark):
    """Live version of the re-merge ablation: run the Figure-2 link
    fault with the auto-remerge membership extension enabled and show
    the cluster heals without an operator."""

    def run_pair():
        from repro.press.config import VIA_PRESS_5

        out = {}
        for label, cfg in (
            ("stock", VIA_PRESS_5),
            (
                "auto-remerge",
                dataclasses.replace(
                    VIA_PRESS_5, auto_remerge=True, remerge_probe_interval=10.0
                ),
            ),
        ):
            c = PressCluster(cfg, scale=SMOKE_SCALE, seed=17)
            c.start()
            c.mendosus.schedule(
                FaultSpec(
                    FaultKind.LINK_DOWN, target="node2", at=30.0, duration=30.0
                )
            )
            c.run_until(220.0)
            out[label] = {
                "partitioned": c.is_partitioned(),
                "availability": c.monitor.availability(),
            }
        return out

    out = run_once(benchmark, run_pair)
    print()
    print("Ablation (live): automatic partition re-merge after a link fault")
    for label, row in out.items():
        state = "partitioned" if row["partitioned"] else "whole"
        print(f"  {label:13s} end state: {state:12s} avail: {row['availability']:.4f}")
    assert out["stock"]["partitioned"]
    assert not out["auto-remerge"]["partitioned"]


def test_ablation_automatic_remerge_model(benchmark, bench_settings, campaign):
    """Model-level version: re-evaluate with stage E (the sub-normal
    regime awaiting the operator) zeroed, bounding what a perfect
    re-merge protocol could buy."""

    def evaluate_both():
        load = FaultLoad.table3(app_fault_mttf=DAY)
        out = {}
        for version in ("TCP-PRESS-HB", "VIA-PRESS-5"):
            profiles = campaign[version]
            merged = _without_stage_e(profiles)
            out[version] = (
                evaluate(profiles, load).availability,
                evaluate(merged, load).availability,
            )
        return out

    out = run_once(benchmark, evaluate_both)
    print()
    print("Ablation: automatic partition re-merge (model-level)")
    for version, (actual, merged) in out.items():
        gain = (merged - actual) * 100
        print(
            f"  {version:14s} AA {actual:.5f} -> {merged:.5f}"
            f"  (+{gain:.4f} points)"
        )
    for actual, merged in out.values():
        assert merged >= actual - 1e-9


def _without_stage_e(profiles):
    from repro.core.model import ProfileSet

    stripped = ProfileSet(profiles.version, profiles.normal_throughput)
    for key in profiles.keys():
        p = profiles.get(key)
        stripped.add(
            SevenStageProfile.from_pairs(
                p.fault,
                p.version,
                p.normal_throughput,
                [
                    (s, p.duration(s), p.throughput(s))
                    for s in STAGES
                    if s is not Stage.E
                ],
            )
        )
    return stripped
