"""Regenerates Figure 2: throughput under a transient link failure.

Paper's shape: TCP-PRESS stalls to ~zero for the whole fault and resumes
(without reconfiguring) only after the link repairs; TCP-PRESS-HB and the
VIA versions splinter into 3+1 — HB after the 15 s heartbeat threshold,
VIA almost instantaneously — and never re-merge on their own.
"""

import pytest

from repro.experiments.timelines import format_timeline_figure, run_figure2

from .conftest import run_once


def test_figure2(benchmark, bench_settings):
    fig = run_once(benchmark, lambda: run_figure2(bench_settings))
    print()
    print(format_timeline_figure(fig, bucket=10.0, title="Figure 2 — link failure"))

    tcp = fig.records["TCP-PRESS"]
    hb = fig.records["TCP-PRESS-HB"]
    via = fig.records["VIA-PRESS-5"]

    # TCP-PRESS: no detection, stall during the fault, full self-recovery.
    assert tcp.detection_at is None
    stall = tcp.timeline.mean_rate(tcp.injected_at + 15, tcp.cleared_at)
    assert stall < tcp.normal_throughput * 0.15
    assert tcp.recovered_fully

    # TCP-PRESS-HB: detection at the heartbeat threshold (~15 s).
    assert hb.detection_at is not None
    assert 10.0 <= hb.detection_at - hb.injected_at <= 25.0
    # ... and the splinter persists (operator reset was needed).
    assert not hb.recovered_fully and hb.reset_at is not None

    # VIA: near-instant detection, minor dip, persistent splinter.
    assert via.detection_at is not None
    assert via.detection_at - via.injected_at < 2.0
    during = via.timeline.mean_rate(via.injected_at, via.cleared_at)
    assert during > via.normal_throughput * 0.6
    assert not via.recovered_fully
