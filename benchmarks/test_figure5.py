"""Regenerates Figure 5: a NULL pointer passed to the send API.

Paper's shape: the TCP versions detect the fault synchronously (EFAULT to
the caller) and sail on; VIA-PRESS-0 gets an asynchronous completion
error and fail-fasts one process; the remote-write versions (VIA-3/5)
report the error at *both* endpoints and lose two processes — all
recover by restart + rejoin.
"""

import pytest

from repro.experiments.timelines import format_timeline_figure, run_figure5

from .conftest import run_once


def test_figure5(benchmark, bench_settings):
    fig = run_once(benchmark, lambda: run_figure5(bench_settings))
    print()
    print(
        format_timeline_figure(
            fig, bucket=10.0, title="Figure 5 — NULL-pointer send fault"
        )
    )

    def fail_fasts(record):
        return len(
            [a for a in record.timeline.annotations if a.label == "fail-fast"]
        )

    # TCP: EFAULT handled, no process deaths, no dip.
    for version in ("TCP-PRESS", "TCP-PRESS-HB"):
        record = fig.records[version]
        assert fail_fasts(record) == 0, version
        after = record.timeline.mean_rate(
            record.injected_at, record.injected_at + 30
        )
        assert after > record.normal_throughput * 0.85

    # VIA-0: one fatal; remote-write versions: two.
    assert fail_fasts(fig.records["VIA-PRESS-0"]) == 1
    assert fail_fasts(fig.records["VIA-PRESS-3"]) == 2
    assert fail_fasts(fig.records["VIA-PRESS-5"]) == 2

    # Restart + rejoin returns every version to normal throughput.
    for version, record in fig.records.items():
        assert record.recovered_fully, version
