"""Regenerates Figure 6: modeled unavailability and performability of the
five versions under the Table-3 fault load, at application fault rates of
1/day and 1/month.

Paper's shape: availability is uniformly poor (~99% at 1/day, under 99.9%
at 1/month) with application faults dominating; the VIA versions' accurate
fail-stop reporting and pre-allocation buy them availability at least as
good as the TCP versions'; since availabilities are close, the fastest
version (VIA-PRESS-5) wins performability and plain TCP-PRESS loses.
"""

import pytest

from repro.core.faultload import DAY, MONTH, FaultLoad
from repro.core.metric import performability_of
from repro.core.model import evaluate
from repro.experiments.performability import format_figure6, run_figure6

from .conftest import run_once


def test_figure6(benchmark, bench_settings, campaign):
    rows = run_once(benchmark, lambda: run_figure6(bench_settings))
    print()
    print(format_figure6(rows))

    by = {(r.version, r.app_mttf): r for r in rows}

    for mttf in (DAY, MONTH):
        # Availability is "uniformly terrible".
        for version in (
            "TCP-PRESS", "TCP-PRESS-HB",
            "VIA-PRESS-0", "VIA-PRESS-3", "VIA-PRESS-5",
        ):
            aa = by[(version, mttf)].availability
            assert 0.98 < aa < 0.9995, (version, mttf)
        # The headline surprise: every VIA version's availability beats
        # *both* TCP versions' under the same fault load.
        for via in ("VIA-PRESS-0", "VIA-PRESS-3", "VIA-PRESS-5"):
            for tcp in ("TCP-PRESS", "TCP-PRESS-HB"):
                assert (
                    by[(via, mttf)].availability
                    > by[(tcp, mttf)].availability
                ), (via, tcp, mttf)
        # Performability follows performance: VIA-5 beats both TCPs.
        p = {
            v: by[(v, mttf)].performability
            for v in ("TCP-PRESS", "TCP-PRESS-HB", "VIA-PRESS-5")
        }
        assert p["VIA-PRESS-5"] > p["TCP-PRESS-HB"]
        assert p["VIA-PRESS-5"] > p["TCP-PRESS"]

    # More faults -> lower availability, lower P (sanity of the sweep).
    for version in ("TCP-PRESS", "VIA-PRESS-5"):
        assert (
            by[(version, DAY)].availability < by[(version, MONTH)].availability
        )
