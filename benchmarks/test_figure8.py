"""Regenerates Figure 8: performability when VIA's harder programming
model is assumed to introduce extra software bugs (TCP is charged one
extra bug per month; VIA from one per day to one per month).

Paper's shape: performability is comparable when the extra VIA
application-fault load is around one per week.
"""

import pytest

from repro.experiments.performability import format_sensitivity, run_figure8

from .conftest import run_once


def test_figure8(benchmark, bench_settings, campaign):
    fig = run_once(benchmark, lambda: run_figure8(bench_settings))
    print()
    print(format_sensitivity(fig))

    p_tcp = fig.tcp["TCP-PRESS-HB"]
    for version in ("VIA-PRESS-0", "VIA-PRESS-3", "VIA-PRESS-5"):
        # The week-rate point sits near the TCP baseline (the crossover).
        week = fig.via["1/week"][version]
        assert fig.via["1/day"][version] < p_tcp
        assert fig.via["1/month"][version] > p_tcp * 0.9
        assert (
            fig.via["1/day"][version] < week < fig.via["1/month"][version]
        )
