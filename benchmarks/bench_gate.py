"""Performance regression gate for the microbenchmarks.

Runs ``benchmarks/test_micro.py`` under pytest-benchmark and compares
each bench's best (min) time against the committed ``BENCH_micro.json``
baseline:

* a bench slower than ``post_pr_s * (1 + tolerance)`` fails the gate
  (tolerance defaults to 0.30; override with ``BENCH_GATE_TOLERANCE`` or
  ``--tolerance`` when a CI runner class is known to differ);
* the committed improvement claims are re-checked arithmetically: every
  bench flagged ``improved_3x`` must have ``pre_pr_s / post_pr_s >= 3``,
  and every entry under ``claims`` (e.g. the warm-start campaign
  speedup) must have ``recorded.cold_s / recorded.warm_s >= min_speedup``;
* claims naming a live ``pair`` of benches are additionally re-measured:
  the cold bench's min over the warm bench's min must clear
  ``min_speedup`` on this machine, not just in the committed record;
* CPU-aware claims (the parallel LP backend bounds) carry a second
  ``min_speedup_multicore`` branch, selected by ``recorded.cpus`` for
  the arithmetic check and by ``os.cpu_count()`` for the live pair, so
  the same baseline gates honestly on 1-core and multi-core runners.

``--update`` refreshes the ``post_pr_s`` numbers from the current run
(preserving the ``pre_pr_s`` reference column, which is only measured
against pre-fastpath code; see PERFORMANCE.md for the methodology).

Usage::

    python benchmarks/bench_gate.py [--baseline BENCH_micro.json]
                                    [--tolerance 0.30] [--update]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_micro.json"


def run_benchmarks(passes: int = 2) -> dict:
    """Run the micro suite; return {bench_name: min_seconds}.

    The baseline was measured as a min over several warmed-up process
    invocations (CPU frequency drift makes any single cold run read
    20–70% high — see PERFORMANCE.md), so the gate reproduces that
    method: warmup on, several rounds, min across ``passes`` separate
    pytest processes.
    """
    results: dict = {}
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory() as td:
        for i in range(passes):
            out = Path(td) / f"bench{i}.json"
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "pytest",
                    "-q",
                    str(REPO_ROOT / "benchmarks" / "test_micro.py"),
                    "--benchmark-warmup=on",
                    "--benchmark-min-rounds=5",
                    f"--benchmark-json={out}",
                ],
                env=env,
                cwd=REPO_ROOT,
            )
            if proc.returncode != 0:
                print("bench-gate: benchmark run failed", file=sys.stderr)
                sys.exit(proc.returncode)
            data = json.loads(out.read_text())
            for b in data["benchmarks"]:
                got = b["stats"]["min"]
                name = b["name"]
                if name not in results or got < results[name]:
                    results[name] = got
    return results


def claim_threshold(claim: dict, cpus) -> float:
    """The speedup a claim requires on a host with ``cpus`` cores.

    CPU-aware claims (the parallel LP backends) carry two branches: on a
    multi-core host ``min_speedup_multicore`` applies; on a single core —
    where a parallel backend has no hardware to win with — the gate
    degrades to the honest ``min_speedup`` overhead bound, so CI stays
    meaningful on either runner class.
    """
    multicore = claim.get("min_speedup_multicore")
    if multicore is not None and cpus is not None and cpus >= 2:
        return float(multicore)
    return float(claim.get("min_speedup", 2.0))


def check_claims(baseline: dict) -> list:
    """Arithmetic re-check of the committed improvement claims."""
    failures = []
    for name, entry in baseline.get("benches", {}).items():
        if not entry.get("improved_3x"):
            continue
        pre = entry.get("pre_pr_s")
        post = entry.get("post_pr_s")
        if not pre or not post or pre / post < 3.0:
            failures.append(
                f"{name}: claimed >=3x but baseline says "
                f"{pre!r}/{post!r} = {pre / post if pre and post else 'n/a'}"
            )
    for name, claim in baseline.get("claims", {}).items():
        recorded = claim.get("recorded", {})
        # The committed record was measured on recorded['cpus'] cores
        # (absent = assume the claim is not CPU-dependent).
        need = claim_threshold(claim, recorded.get("cpus"))
        cold = recorded.get("cold_s")
        warm = recorded.get("warm_s")
        if not need or not cold or not warm or cold / warm < need:
            failures.append(
                f"{name}: claimed >={need}x but recorded "
                f"{cold!r}/{warm!r} = "
                f"{cold / warm if cold and warm else 'n/a'}"
            )
    return failures


def check_live_pairs(baseline: dict, measured: dict) -> list:
    """Re-measure every claim that names a live (cold, warm) bench pair."""
    failures = []
    for name, claim in baseline.get("claims", {}).items():
        pair = claim.get("pair")
        if not pair:
            continue
        cold_name, warm_name = pair
        # Live pairs run on THIS machine, so the branch is picked by the
        # live core count, not the committed record's.
        need = claim_threshold(claim, os.cpu_count())
        cold = measured.get(cold_name)
        warm = measured.get(warm_name)
        if cold is None or warm is None:
            failures.append(
                f"{name}: pair bench missing from the run "
                f"({cold_name}={cold!r}, {warm_name}={warm!r})"
            )
            continue
        ratio = cold / warm
        status = "ok" if ratio >= need else "FAIL"
        branch = (
            f" [{os.cpu_count()}-core branch]"
            if claim.get("min_speedup_multicore") is not None
            else ""
        )
        print(
            f"bench-gate: claim {name}: live {cold * 1e3:.2f} ms / "
            f"{warm * 1e3:.2f} ms = {ratio:.2f}x (need >={need}x){branch} {status}"
        )
        if ratio < need:
            failures.append(
                f"{name}: live speedup {ratio:.2f}x < required {need}x"
            )
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOLERANCE", "0.30")),
        help="allowed fractional slowdown vs the baseline (default 0.30)",
    )
    ap.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline's post_pr_s column from this run",
    )
    args = ap.parse_args()

    baseline = json.loads(args.baseline.read_text())
    claim_failures = check_claims(baseline)
    if claim_failures:
        for f in claim_failures:
            print(f"bench-gate CLAIM FAIL: {f}", file=sys.stderr)
        return 1

    measured = run_benchmarks()

    if args.update:
        for name, entry in baseline["benches"].items():
            if name in measured:
                entry["post_pr_s"] = round(measured[name], 6)
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"bench-gate: baseline updated at {args.baseline}")
        return 0

    failures = []
    for name, entry in baseline["benches"].items():
        post = entry.get("post_pr_s")
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: present in baseline but not measured")
            continue
        limit = post * (1.0 + args.tolerance)
        status = "ok" if got <= limit else "REGRESSION"
        print(
            f"bench-gate: {name}: {got * 1e3:.2f} ms "
            f"(baseline {post * 1e3:.2f} ms, limit {limit * 1e3:.2f} ms) {status}"
        )
        if got > limit:
            failures.append(
                f"{name}: {got * 1e3:.2f} ms > limit {limit * 1e3:.2f} ms "
                f"(baseline {post * 1e3:.2f} ms + {args.tolerance:.0%})"
            )
    for name in measured:
        if name not in baseline["benches"]:
            print(f"bench-gate: {name}: no baseline entry (new bench?) — skipped")
    failures.extend(check_live_pairs(baseline, measured))

    if failures:
        for f in failures:
            print(f"bench-gate FAIL: {f}", file=sys.stderr)
        return 1
    print("bench-gate: all benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
